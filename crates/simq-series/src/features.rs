//! Mapping time series into an indexable multidimensional feature space.
//!
//! Following the paper's experimental setup (Section 5):
//!
//! 1. every series is transformed to its **normal form** (zero mean, unit
//!    standard deviation);
//! 2. the mean and standard deviation of the *original* series become the
//!    first two index dimensions, "so despite using the polar
//!    representation, we could still have simple shifts" (the GK95
//!    operations);
//! 3. the normal form's DFT is taken; its first coefficient is zero by
//!    construction ("so we can throw it away") and the next `k`
//!    coefficients are mapped to `2k` dimensions, either as
//!    real/imaginary pairs (`S_rect`) or as magnitude/phase pairs
//!    (`S_pol`).
//!
//! The paper's index uses `k = 2` (six dimensions total); [`FeatureScheme`]
//! makes `k`, the representation and the presence of the statistics
//! dimensions configurable, which the ablation experiments sweep.
//!
//! **Search rectangles** (Section 3.1, Figure 7): the minimum bounding
//! rectangle of all points within Euclidean distance ε of the query. In
//! `S_rect` it is `(q_i − ε, q_i + ε)` per dimension. In `S_pol`, for a
//! coefficient `m·e^{jα}`, the magnitude spans `m ± ε` and the angle spans
//! `α ± asin(ε/m)` — degenerating to the full circle when `ε ≥ m`.

use crate::error::SeriesError;
use crate::normal;
use simq_dsp::complex::Complex;
use simq_dsp::fft;
use simq_index::geom::{DimSemantics, Rect, Space};
use std::f64::consts::PI;

/// A point in the feature space (length = [`FeatureScheme::dims`]).
pub type FeaturePoint = Vec<f64>;

/// How complex coefficients are laid out as real dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Representation {
    /// Real/imaginary pairs — `S_rect`. Safe for real stretches and complex
    /// shifts (Theorem 2); supports Euclidean kNN in index space.
    Rectangular,
    /// Magnitude/phase pairs — `S_pol`. Safe for complex multipliers
    /// (Theorem 3) — the representation the paper's experiments use, since
    /// "vector multiplication for time series data seemed to be more
    /// important than vector addition".
    Polar,
}

/// The feature-extraction recipe: which dimensions the index stores.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureScheme {
    /// Number of complex DFT coefficients kept (frequencies `1..=k` of the
    /// normal form).
    pub k: usize,
    /// Complex-to-real layout.
    pub rep: Representation,
    /// Whether the mean and standard deviation of the original series are
    /// prepended as two extra linear dimensions.
    pub include_stats: bool,
}

/// Everything extracted from one series: the index point plus the data the
/// postprocessing step needs.
#[derive(Debug, Clone)]
pub struct SeriesFeatures {
    /// The point stored in the index.
    pub point: FeaturePoint,
    /// Mean of the original series.
    pub mean: f64,
    /// Population standard deviation of the original series.
    pub std_dev: f64,
    /// Full spectrum of the normal form (all `n` coefficients; index 0 is
    /// numerically zero).
    pub spectrum: Vec<Complex>,
}

impl FeatureScheme {
    /// Creates a scheme.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize, rep: Representation, include_stats: bool) -> Self {
        assert!(k > 0, "at least one coefficient is required");
        FeatureScheme {
            k,
            rep,
            include_stats,
        }
    }

    /// The paper's experimental configuration: `k = 2`, polar, with the
    /// mean and standard deviation dimensions (six dimensions total).
    pub fn paper_default() -> Self {
        FeatureScheme::new(2, Representation::Polar, true)
    }

    /// Number of index dimensions.
    pub fn dims(&self) -> usize {
        (if self.include_stats { 2 } else { 0 }) + 2 * self.k
    }

    /// Number of leading linear statistics dimensions (0 or 2).
    pub fn stats_dims(&self) -> usize {
        if self.include_stats {
            2
        } else {
            0
        }
    }

    /// The [`Space`] the index must be built over: linear everywhere except
    /// the phase-angle dimensions of the polar representation, which are
    /// circular with period `2π`.
    pub fn space(&self) -> Space {
        let mut dims = Vec::with_capacity(self.dims());
        for _ in 0..self.stats_dims() {
            dims.push(DimSemantics::Linear);
        }
        for _ in 0..self.k {
            match self.rep {
                Representation::Rectangular => {
                    dims.push(DimSemantics::Linear);
                    dims.push(DimSemantics::Linear);
                }
                Representation::Polar => {
                    dims.push(DimSemantics::Linear); // magnitude
                    dims.push(DimSemantics::Circular { period: 2.0 * PI });
                }
            }
        }
        Space::new(dims)
    }

    /// Extracts features from a raw series: normalize, transform, project.
    ///
    /// # Errors
    /// [`SeriesError::TooFewSamples`] when the series has fewer than `k+1`
    /// samples (frequencies `1..=k` must exist); the normalization errors
    /// of [`normal::normalize`] otherwise.
    pub fn extract(&self, series: &[f64]) -> Result<SeriesFeatures, SeriesError> {
        if series.len() < self.k + 1 {
            return Err(SeriesError::TooFewSamples {
                k: self.k,
                len: series.len(),
            });
        }
        let nf = normal::normalize(series)?;
        let spectrum = fft::forward_real(&nf.series);
        let point = self.point_from_spectrum(nf.mean, nf.std_dev, &spectrum)?;
        Ok(SeriesFeatures {
            point,
            mean: nf.mean,
            std_dev: nf.std_dev,
            spectrum,
        })
    }

    /// Builds the index point from a precomputed normal-form spectrum and
    /// statistics. `spectrum` must hold at least `k+1` coefficients
    /// (frequencies `0..=k`).
    ///
    /// # Errors
    /// [`SeriesError::TooFewSamples`] when the spectrum is too short.
    pub fn point_from_spectrum(
        &self,
        mean: f64,
        std_dev: f64,
        spectrum: &[Complex],
    ) -> Result<FeaturePoint, SeriesError> {
        if spectrum.len() < self.k + 1 {
            return Err(SeriesError::TooFewSamples {
                k: self.k,
                len: spectrum.len(),
            });
        }
        let mut point = Vec::with_capacity(self.dims());
        if self.include_stats {
            point.push(mean);
            point.push(std_dev);
        }
        for &c in &spectrum[1..=self.k] {
            match self.rep {
                Representation::Rectangular => {
                    point.push(c.re);
                    point.push(c.im);
                }
                Representation::Polar => {
                    point.push(c.abs());
                    point.push(c.angle());
                }
            }
        }
        Ok(point)
    }

    /// Reconstructs the kept complex coefficients (frequencies `1..=k`)
    /// from an index point.
    pub fn coefficients_of_point(&self, point: &[f64]) -> Vec<Complex> {
        let base = self.stats_dims();
        (0..self.k)
            .map(|i| {
                let a = point[base + 2 * i];
                let b = point[base + 2 * i + 1];
                match self.rep {
                    Representation::Rectangular => Complex::new(a, b),
                    Representation::Polar => Complex::from_polar(a, b),
                }
            })
            .collect()
    }

    /// The search rectangle for a range query: the MBR of all feature
    /// points whose kept coefficients lie within Euclidean distance `eps`
    /// of the query's (Section 3.1). Statistics dimensions are left
    /// unbounded — they are not part of the normal-form distance; use
    /// [`FeatureScheme::search_rect_with_stats`] to constrain them
    /// (GK95-style shift/scale windows).
    pub fn search_rect(&self, q: &[f64], eps: f64) -> Rect {
        self.search_rect_with_stats(q, eps, None)
    }

    /// Search rectangle with optional `(mean_tol, std_tol)` windows on the
    /// statistics dimensions.
    ///
    /// # Panics
    /// Panics if `q` has the wrong dimensionality or `eps` is negative.
    pub fn search_rect_with_stats(
        &self,
        q: &[f64],
        eps: f64,
        stats_tol: Option<(f64, f64)>,
    ) -> Rect {
        assert_eq!(q.len(), self.dims(), "query point dimensionality mismatch");
        assert!(eps >= 0.0, "epsilon must be non-negative");
        let mut lo = Vec::with_capacity(self.dims());
        let mut hi = Vec::with_capacity(self.dims());
        if self.include_stats {
            match stats_tol {
                Some((mean_tol, std_tol)) => {
                    lo.push(q[0] - mean_tol);
                    hi.push(q[0] + mean_tol);
                    lo.push(q[1] - std_tol);
                    hi.push(q[1] + std_tol);
                }
                None => {
                    lo.extend([f64::NEG_INFINITY; 2]);
                    hi.extend([f64::INFINITY; 2]);
                }
            }
        }
        let base = self.stats_dims();
        for i in 0..self.k {
            match self.rep {
                Representation::Rectangular => {
                    for d in [base + 2 * i, base + 2 * i + 1] {
                        lo.push(q[d] - eps);
                        hi.push(q[d] + eps);
                    }
                }
                Representation::Polar => {
                    let m = q[base + 2 * i];
                    let alpha = q[base + 2 * i + 1];
                    lo.push(m - eps);
                    hi.push(m + eps);
                    if eps >= m {
                        // The ε-disk contains the origin: every phase is
                        // possible (Figure 7 degenerates).
                        lo.push(alpha - PI);
                        hi.push(alpha + PI);
                    } else {
                        let theta = (eps / m).asin();
                        lo.push(alpha - theta);
                        hi.push(alpha + theta);
                    }
                }
            }
        }
        Rect::new(lo, hi)
    }

    /// Lower bound on the Euclidean distance between two normal-form
    /// series, computed from their index points alone (the k-coefficient
    /// underestimate of Lemma 1). The kept coefficients are compared as
    /// complex numbers, so the bound is representation-independent.
    ///
    /// The missing conjugate-symmetric upper half of the spectrum mirrors
    /// frequencies `1..=k`, so their contribution is doubled — still an
    /// underestimate, but a tighter one (standard AFS93 refinement).
    pub fn lower_bound_distance(&self, a: &[f64], b: &[f64]) -> f64 {
        let ca = self.coefficients_of_point(a);
        let cb = self.coefficients_of_point(b);
        let sum: f64 = ca.iter().zip(&cb).map(|(x, y)| (*x - *y).norm_sqr()).sum();
        (2.0 * sum).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simq_dsp::euclidean_complex;

    fn sample_series(n: usize, seed: u64) -> Vec<f64> {
        // Deterministic pseudo-random walk.
        let mut v = Vec::with_capacity(n);
        let mut x = 50.0 + (seed % 13) as f64;
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        for _ in 0..n {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let step = ((state >> 33) % 9) as f64 - 4.0;
            x += step;
            v.push(x);
        }
        v
    }

    #[test]
    fn paper_default_is_six_dimensional() {
        let scheme = FeatureScheme::paper_default();
        assert_eq!(scheme.dims(), 6);
        let s = sample_series(128, 1);
        let f = scheme.extract(&s).unwrap();
        assert_eq!(f.point.len(), 6);
        // Dims: mean, std, |S1|, angle(S1), |S2|, angle(S2).
        assert!((f.point[0] - normal::mean(&s)).abs() < 1e-9);
        assert!((f.point[1] - normal::std_dev(&s)).abs() < 1e-9);
        assert!(f.point[2] >= 0.0 && f.point[4] >= 0.0);
        assert!(f.point[3].abs() <= PI && f.point[5].abs() <= PI);
    }

    #[test]
    fn dc_coefficient_of_normal_form_is_zero() {
        let scheme = FeatureScheme::paper_default();
        let f = scheme.extract(&sample_series(64, 2)).unwrap();
        assert!(f.spectrum[0].abs() < 1e-9);
    }

    #[test]
    fn rect_and_polar_encode_same_coefficients() {
        let s = sample_series(64, 3);
        let rect = FeatureScheme::new(3, Representation::Rectangular, false);
        let polar = FeatureScheme::new(3, Representation::Polar, false);
        let fr = rect.extract(&s).unwrap();
        let fp = polar.extract(&s).unwrap();
        let cr = rect.coefficients_of_point(&fr.point);
        let cp = polar.coefficients_of_point(&fp.point);
        for (a, b) in cr.iter().zip(&cp) {
            assert!(a.approx_eq(*b, 1e-9));
        }
    }

    #[test]
    fn lower_bound_is_a_lower_bound() {
        // Lemma 1's engine: index distance never exceeds true distance.
        for (i, j) in [(1u64, 2u64), (3, 4), (5, 6), (7, 8)] {
            let a = sample_series(128, i);
            let b = sample_series(128, j);
            let scheme = FeatureScheme::new(3, Representation::Rectangular, false);
            let fa = scheme.extract(&a).unwrap();
            let fb = scheme.extract(&b).unwrap();
            let lb = scheme.lower_bound_distance(&fa.point, &fb.point);
            let full = euclidean_complex(&fa.spectrum, &fb.spectrum);
            assert!(
                lb <= full + 1e-9,
                "lower bound {lb} exceeds true distance {full}"
            );
        }
    }

    #[test]
    fn search_rect_contains_all_eps_near_points() {
        // Every point within eps of q (in full spectrum distance) must fall
        // inside q's search rectangle — no false dismissals.
        let scheme = FeatureScheme::paper_default();
        let space = scheme.space();
        let q_series = sample_series(128, 10);
        let fq = scheme.extract(&q_series).unwrap();
        for seed in 11..40u64 {
            let s = sample_series(128, seed);
            let fs = scheme.extract(&s).unwrap();
            let true_dist = euclidean_complex(&fq.spectrum, &fs.spectrum);
            for eps in [0.5, 2.0, 8.0, 20.0] {
                if true_dist <= eps {
                    let rect = scheme.search_rect(&fq.point, eps);
                    assert!(
                        space.contains(&rect, &fs.point),
                        "seed {seed} eps {eps}: point escaped its search rectangle"
                    );
                }
            }
        }
    }

    #[test]
    fn polar_angle_degenerates_when_eps_covers_origin() {
        let scheme = FeatureScheme::new(1, Representation::Polar, false);
        // Query coefficient with magnitude 0.5, eps 1.0 ≥ m.
        let q = vec![0.5, 1.0];
        let rect = scheme.search_rect(&q, 1.0);
        // Angle dimension must span the full circle.
        assert!((rect.hi[1] - rect.lo[1] - 2.0 * PI).abs() < 1e-12);
    }

    #[test]
    fn polar_angle_uses_asin() {
        let scheme = FeatureScheme::new(1, Representation::Polar, false);
        let q = vec![2.0, 0.3];
        let rect = scheme.search_rect(&q, 1.0);
        let theta = (1.0f64 / 2.0).asin();
        assert!((rect.lo[1] - (0.3 - theta)).abs() < 1e-12);
        assert!((rect.hi[1] - (0.3 + theta)).abs() < 1e-12);
        assert_eq!(rect.lo[0], 1.0);
        assert_eq!(rect.hi[0], 3.0);
    }

    #[test]
    fn stats_window_bounds_stats_dims() {
        let scheme = FeatureScheme::paper_default();
        let s = sample_series(64, 20);
        let f = scheme.extract(&s).unwrap();
        let rect = scheme.search_rect_with_stats(&f.point, 1.0, Some((0.5, 0.1)));
        assert!((rect.hi[0] - rect.lo[0] - 1.0).abs() < 1e-12);
        assert!((rect.hi[1] - rect.lo[1] - 0.2).abs() < 1e-12);
        let unbounded = scheme.search_rect(&f.point, 1.0);
        assert_eq!(unbounded.lo[0], f64::NEG_INFINITY);
        assert_eq!(unbounded.hi[1], f64::INFINITY);
    }

    #[test]
    fn too_short_series_rejected() {
        let scheme = FeatureScheme::new(4, Representation::Polar, false);
        assert!(matches!(
            scheme.extract(&[1.0, 2.0, 3.0]),
            Err(SeriesError::TooFewSamples { .. })
        ));
    }

    #[test]
    fn roundtrip_coefficients() {
        let scheme = FeatureScheme::new(2, Representation::Polar, true);
        let s = sample_series(32, 30);
        let f = scheme.extract(&s).unwrap();
        let coeffs = scheme.coefficients_of_point(&f.point);
        for (i, c) in coeffs.iter().enumerate() {
            assert!(c.approx_eq(f.spectrum[i + 1], 1e-9));
        }
    }
}
