//! Time warping — stretching the time dimension by an integer factor
//! (paper Example 1.2 and Appendix A).
//!
//! Warping replaces every sample `v_i` by `m` consecutive copies, so a
//! series sampled every other day becomes comparable with one sampled
//! daily. Appendix A derives the frequency-domain form: given the first
//! `k ≤ n` Fourier coefficients of a series `s` of length `n`, the first
//! `k` coefficients of the warped series `s'` of length `m·n` are obtained
//! by the transformation `T = (a, 0)` with
//!
//! ```text
//! a_f = Σ_{t=0}^{m-1} e^{-j2πtf/(mn)}        (Equation 19)
//! ```
//!
//! **Normalization caveat.** The appendix normalizes the warped spectrum by
//! `1/√n` (the *original* length), not `1/√(mn)`. Under this library's
//! uniform `1/√len` convention the warped spectrum carries an extra
//! `1/√m`, so the coefficient vector satisfying
//! `DFT_norm(warp(s, m))_f = a_f · DFT_norm(s)_f` is Equation 19 divided by
//! `√m` — provided by [`warp_coefficients`]. The paper-exact vector is
//! [`warp_coefficients_eq19`]. Both identities are verified by tests.

use crate::error::SeriesError;
use simq_dsp::complex::Complex;
use std::f64::consts::PI;

/// Stretches the time dimension by `m`: every value `v_i` becomes `m`
/// consecutive copies (paper Equation 16).
///
/// # Errors
/// [`SeriesError::InvalidWarpFactor`] when `m == 0`.
pub fn warp(s: &[f64], m: usize) -> Result<Vec<f64>, SeriesError> {
    if m == 0 {
        return Err(SeriesError::InvalidWarpFactor(m));
    }
    let mut out = Vec::with_capacity(s.len() * m);
    for &v in s {
        for _ in 0..m {
            out.push(v);
        }
    }
    Ok(out)
}

/// The inverse of [`warp`] when the series is exactly `m`-warped: keeps
/// every `m`-th sample. Returns `None` when the length is not a multiple of
/// `m` or consecutive runs disagree (the series is not an exact warp).
pub fn unwarp(s: &[f64], m: usize) -> Option<Vec<f64>> {
    if m == 0 || !s.len().is_multiple_of(m) {
        return None;
    }
    let mut out = Vec::with_capacity(s.len() / m);
    for chunk in s.chunks(m) {
        if chunk.iter().any(|&v| v != chunk[0]) {
            return None;
        }
        out.push(chunk[0]);
    }
    Some(out)
}

/// Equation 19 exactly: `a_f = Σ_{t=0}^{m-1} e^{-j2πtf/(mn)}` for
/// `f = 0, …, count−1`, where `n` is the *original* series length.
///
/// Satisfies `S'_f = a_f · S_f` when `S'` is computed with the appendix's
/// `1/√n` normalization over the warped (length `m·n`) series.
///
/// # Errors
/// [`SeriesError::InvalidWarpFactor`] when `m == 0`;
/// [`SeriesError::EmptySeries`] when `n == 0`.
pub fn warp_coefficients_eq19(
    n: usize,
    m: usize,
    count: usize,
) -> Result<Vec<Complex>, SeriesError> {
    if m == 0 {
        return Err(SeriesError::InvalidWarpFactor(m));
    }
    if n == 0 {
        return Err(SeriesError::EmptySeries);
    }
    let mn = (m * n) as f64;
    let mut out = Vec::with_capacity(count);
    for f in 0..count {
        let omega = Complex::cis(-2.0 * PI * (f as f64) / mn);
        let mut rot = Complex::ONE;
        let mut acc = Complex::ZERO;
        for _ in 0..m {
            acc += rot;
            rot *= omega;
        }
        out.push(acc);
    }
    Ok(out)
}

/// Warp coefficients under this library's uniform `1/√len` DFT convention:
/// `DFT_norm(warp(s, m))_f = a_f · DFT_norm(s)_f` for `f < count`.
///
/// Equal to [`warp_coefficients_eq19`] divided by `√m` (see the module
/// docs for the normalization bookkeeping).
///
/// # Errors
/// Same conditions as [`warp_coefficients_eq19`].
pub fn warp_coefficients(n: usize, m: usize, count: usize) -> Result<Vec<Complex>, SeriesError> {
    let scale = 1.0 / (m as f64).sqrt();
    Ok(warp_coefficients_eq19(n, m, count)?
        .into_iter()
        .map(|c| c * scale)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use simq_dsp::{dft, fft};

    #[test]
    fn example_1_2_warp() {
        // p warped by 2 equals the 8-point series of Figure 2.
        let p = [20.0, 21.0, 20.0, 23.0];
        let s = warp(&p, 2).unwrap();
        assert_eq!(s, vec![20.0, 20.0, 21.0, 21.0, 20.0, 20.0, 23.0, 23.0]);
    }

    #[test]
    fn warp_by_one_is_identity() {
        let p = [1.0, 2.0, 3.0];
        assert_eq!(warp(&p, 1).unwrap(), p.to_vec());
    }

    #[test]
    fn warp_factor_zero_rejected() {
        assert_eq!(warp(&[1.0], 0), Err(SeriesError::InvalidWarpFactor(0)));
    }

    #[test]
    fn unwarp_inverts_warp() {
        let p = [5.0, 7.0, 7.0, 2.0];
        for m in 1..=4 {
            assert_eq!(unwarp(&warp(&p, m).unwrap(), m), Some(p.to_vec()));
        }
    }

    #[test]
    fn unwarp_rejects_non_warped() {
        assert_eq!(unwarp(&[1.0, 2.0], 2), None);
        assert_eq!(unwarp(&[1.0, 1.0, 2.0], 2), None);
    }

    #[test]
    fn equation_19_identity_with_paper_normalization() {
        // S'_f (1/√n normalization over length m·n) == a_f · S_f.
        let s = [20.0, 21.0, 20.0, 23.0, 25.0, 19.0];
        let n = s.len();
        let m = 3;
        let k = n; // all original coefficients
        let spec = dft::dft(&s); // 1/√n
        let warped = warp(&s, m).unwrap();
        // Paper-normalized spectrum of the warped series: 1/√n · Σ …
        let mn = warped.len();
        let mut paper_spec = Vec::with_capacity(k);
        for f in 0..k {
            let mut acc = Complex::ZERO;
            for (t, &v) in warped.iter().enumerate() {
                acc += Complex::cis(-2.0 * PI * (t as f64) * (f as f64) / mn as f64) * v;
            }
            paper_spec.push(acc * (1.0 / (n as f64).sqrt()));
        }
        let a = warp_coefficients_eq19(n, m, k).unwrap();
        for f in 0..k {
            let rhs = a[f] * spec[f];
            assert!(paper_spec[f].approx_eq(rhs, 1e-8), "f={f}");
        }
    }

    #[test]
    fn normalized_identity_with_library_convention() {
        // DFT_norm(warp(s,m))_f == warp_coefficients(n,m)_f · DFT_norm(s)_f.
        let s = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let n = s.len();
        for m in [2usize, 3, 4] {
            let spec = fft::forward_real(&s);
            let warped_spec = fft::forward_real(&warp(&s, m).unwrap());
            let a = warp_coefficients(n, m, n).unwrap();
            for f in 0..n {
                let rhs = a[f] * spec[f];
                assert!(
                    warped_spec[f].approx_eq(rhs, 1e-8),
                    "m={m} f={f}: {} vs {rhs}",
                    warped_spec[f]
                );
            }
        }
    }

    #[test]
    fn dc_coefficient_is_sqrt_m() {
        // At f=0 Equation 19 gives m; normalized version gives √m, matching
        // the energy increase of duplicating samples.
        let a19 = warp_coefficients_eq19(4, 4, 1).unwrap();
        assert!(a19[0].approx_eq(Complex::real(4.0), 1e-12));
        let a = warp_coefficients(4, 4, 1).unwrap();
        assert!(a[0].approx_eq(Complex::real(2.0), 1e-12));
    }

    #[test]
    fn warped_query_matches_dense_series_in_frequency_space() {
        // End-to-end Example 1.2: comparing warp(p, 2) to s in the frequency
        // domain using only the transformed coefficients of p.
        let p = [20.0, 21.0, 20.0, 23.0];
        let s = [20.0, 20.0, 21.0, 21.0, 20.0, 20.0, 23.0, 23.0];
        let k = 4;
        let a = warp_coefficients(p.len(), 2, k).unwrap();
        let p_spec = fft::forward_real(&p);
        let s_spec = fft::forward_real(&s);
        for f in 0..k {
            let warped = a[f] * p_spec[f];
            assert!(warped.approx_eq(s_spec[f], 1e-8), "f={f}");
        }
    }
}
