//! # simq-series — the time-series instantiation of the similarity model
//!
//! Domain operations and feature-space machinery for time series, as used
//! by the published instantiation of the framework:
//!
//! * [`normal`] — normal form (Equation 9), shift, scale.
//! * [`mavg`] — circular (weighted) moving averages and their closed-form
//!   frequency coefficients (Equation 11).
//! * [`reverse`](mod@reverse) — series reversal `T_rev = (−1, 0)` (Example 2.2).
//! * [`warp`](mod@warp) — time warping and its coefficient vector (Appendix A,
//!   Equation 19).
//! * [`features`] — mapping series to indexable feature points (`S_rect`
//!   and `S_pol`), search rectangles (Figure 7), and feature distances.
//! * [`mindist`] — lower bounds on spectral distance from index
//!   rectangles (annular-sector MINDIST for the polar representation).
//! * [`kernel`] — the chunked flat-slice distance kernel shared by the
//!   executors and scan baselines (bitwise identical to the scalar
//!   reference loops, early abandoning hoisted to chunk granularity).
//! * [`transform`] — series transformations, their lowering to safe
//!   feature-space transformations (Theorems 2 and 3), and the safety
//!   checks that reject the unsafe cases.
//! * [`error`] — error types.

#![warn(missing_docs)]

pub mod error;
pub mod features;
pub mod kernel;
pub mod mavg;
pub mod mindist;
pub mod normal;
pub mod reverse;
pub mod transform;
pub mod warp;

pub use error::SeriesError;
pub use features::{FeaturePoint, FeatureScheme, Representation};
pub use kernel::{distance_outcome, euclidean_sq_flat, DistOutcome};
pub use mavg::{moving_average, plain_moving_average, weighted_moving_average};
pub use mindist::{sector_distance, spectral_mindist};
pub use normal::{mean, normal_form, normalize, std_dev, NormalForm};
pub use reverse::reverse;
pub use transform::SeriesTransform;
pub use warp::{warp, warp_coefficients};
