//! Series reversal — `T_rev = (−1, 0)` (paper Example 2.2).
//!
//! Multiplying every closing price by −1 turns anti-correlated series into
//! correlated ones; the paper uses this to find hedging pairs ("all the
//! pairs of series that move in opposite directions") as a spatial join
//! between `r` and `T_rev(r)`.

use simq_dsp::complex::Complex;

/// Negates every sample: the time-domain action of `T_rev`.
pub fn reverse(s: &[f64]) -> Vec<f64> {
    s.iter().map(|v| -v).collect()
}

/// Frequency-domain coefficients of `T_rev` for `count` coefficients:
/// `a_f = −1` for all `f` (by linearity of the DFT, Equation 5).
pub fn reverse_coefficients(count: usize) -> Vec<Complex> {
    vec![Complex::real(-1.0); count]
}

#[cfg(test)]
mod tests {
    use super::*;
    use simq_dsp::fft;

    #[test]
    fn reverse_negates() {
        assert_eq!(reverse(&[1.0, -2.0, 3.0]), vec![-1.0, 2.0, -3.0]);
    }

    #[test]
    fn reverse_is_involutive() {
        let s = [4.0, 5.0, 6.0];
        assert_eq!(reverse(&reverse(&s)), s.to_vec());
    }

    #[test]
    fn frequency_coefficients_match_time_domain() {
        // DFT(−s) == (−1) ∗ DFT(s), elementwise.
        let s = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0];
        let spec = fft::forward_real(&s);
        let coef = reverse_coefficients(s.len());
        let lhs = fft::forward_real(&reverse(&s));
        for ((x, a), l) in spec.iter().zip(&coef).zip(&lhs) {
            assert!((*x * *a).approx_eq(*l, 1e-10));
        }
    }

    #[test]
    fn anti_correlated_series_become_close_after_reversal() {
        // The Example 2.2 scenario in miniature: y ≈ −x ⇒ reverse(y) ≈ x.
        let x: Vec<f64> = (0..32).map(|i| (i as f64 * 0.3).sin()).collect();
        let y: Vec<f64> = x.iter().map(|v| -v + 0.01).collect();
        let d_raw = simq_dsp::euclidean(&x, &y);
        let d_rev = simq_dsp::euclidean(&x, &reverse(&y));
        assert!(d_rev < d_raw / 10.0);
    }
}
