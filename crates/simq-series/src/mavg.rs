//! Moving averages — the paper's flagship transformation.
//!
//! The paper uses a *circular* `m`-day moving average: the averaging window
//! wraps from the beginning of the sequence to the end, producing an output
//! of the same length `n` (Section 1, Example 1.1 discussion). "When the
//! length of the window is small enough compared to the length of the
//! sequence, which is usually the case in practice, both [circular and
//! ordinary] averages are almost the same."
//!
//! In the transformation language the `m`-day moving average is
//! `T_mavg = (a, 0)` with `a` the spectrum of the kernel
//! `(1/m, …, 1/m, 0, …, 0)` (paper Equation 11, via the
//! convolution–multiplication property). Under the symmetric `1/√n` DFT
//! convention the exact coefficient vector is
//!
//! ```text
//! a_f = (1/m) · Σ_{t=0}^{m-1} e^{-j2πtf/n}     (= √n · DFT(kernel)_f)
//! ```
//!
//! so that `a ∗ X = DFT(mavg(x))` holds exactly — verified by tests here.

use crate::error::SeriesError;
use simq_dsp::complex::Complex;
use std::f64::consts::PI;

/// Circular `m`-day moving average with equal weights (the paper's
/// `Tmavg`): output sample `i` averages `x_i, x_{i−1}, …, x_{i−m+1}` with
/// indices modulo `n`.
///
/// # Errors
/// [`SeriesError::InvalidWindow`] when `window` is zero or exceeds the
/// series length; [`SeriesError::EmptySeries`] for an empty series.
pub fn moving_average(s: &[f64], window: usize) -> Result<Vec<f64>, SeriesError> {
    let weights = vec![1.0 / window.max(1) as f64; window];
    weighted_moving_average(s, &weights)
}

/// Circular weighted moving average: output sample `i` is
/// `Σ_{t=0}^{m-1} w_t · x_{i−t mod n}`.
///
/// "The weights w1, …, wm are not necessarily equal. For trend prediction
/// purposes, for example, the weights at the end are usually chosen to be
/// higher than those at the beginning."
///
/// # Errors
/// [`SeriesError::EmptyKernel`] for an empty weight vector;
/// [`SeriesError::InvalidWindow`] when the kernel is longer than the series;
/// [`SeriesError::EmptySeries`] for an empty series.
pub fn weighted_moving_average(s: &[f64], weights: &[f64]) -> Result<Vec<f64>, SeriesError> {
    if s.is_empty() {
        return Err(SeriesError::EmptySeries);
    }
    if weights.is_empty() {
        return Err(SeriesError::EmptyKernel);
    }
    let n = s.len();
    let m = weights.len();
    if m > n {
        return Err(SeriesError::InvalidWindow { window: m, len: n });
    }
    let mut out = vec![0.0; n];
    for (i, o) in out.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (t, &w) in weights.iter().enumerate() {
            acc += w * s[(i + n - t) % n];
        }
        *o = acc;
    }
    Ok(out)
}

/// The ordinary (non-circular) `l`-day moving average of length `n − l + 1`,
/// as used in stock chart analysis; provided for comparison with the
/// circular version (Example 1.1 computes distances on these).
///
/// # Errors
/// [`SeriesError::InvalidWindow`] when `window` is zero or exceeds the
/// series length.
pub fn plain_moving_average(s: &[f64], window: usize) -> Result<Vec<f64>, SeriesError> {
    if window == 0 || window > s.len() {
        return Err(SeriesError::InvalidWindow {
            window,
            len: s.len(),
        });
    }
    let inv = 1.0 / window as f64;
    Ok(s.windows(window)
        .map(|w| w.iter().sum::<f64>() * inv)
        .collect())
}

/// Closed-form frequency-domain coefficients of the circular weighted
/// moving average for a series of length `n`:
/// `a_f = Σ_{t=0}^{m-1} w_t · e^{-j2πtf/n}`, for `f = 0, …, count-1`.
///
/// Multiplying a (normalized) spectrum elementwise by these coefficients
/// yields the (normalized) spectrum of the moving-averaged series exactly.
///
/// # Errors
/// [`SeriesError::EmptyKernel`] for an empty weight vector;
/// [`SeriesError::InvalidWindow`] when the kernel is longer than the series.
pub fn weighted_mavg_coefficients(
    n: usize,
    weights: &[f64],
    count: usize,
) -> Result<Vec<Complex>, SeriesError> {
    if weights.is_empty() {
        return Err(SeriesError::EmptyKernel);
    }
    if weights.len() > n {
        return Err(SeriesError::InvalidWindow {
            window: weights.len(),
            len: n,
        });
    }
    let mut out = Vec::with_capacity(count);
    for f in 0..count {
        // a_f = Σ_t w_t · ω^t with ω = e^{-j2πf/n}; one trig evaluation per
        // frequency, then incremental rotation (the loop is on the hot
        // path of every transformed query).
        let omega = Complex::cis(-2.0 * PI * (f as f64) / n as f64);
        let mut rot = Complex::ONE;
        let mut acc = Complex::ZERO;
        for &w in weights {
            acc += rot * w;
            rot *= omega;
        }
        out.push(acc);
    }
    Ok(out)
}

/// Equal-weight special case of [`weighted_mavg_coefficients`] (paper
/// Equation 11's kernel).
///
/// # Errors
/// Same conditions as [`weighted_mavg_coefficients`].
pub fn mavg_coefficients(
    n: usize,
    window: usize,
    count: usize,
) -> Result<Vec<Complex>, SeriesError> {
    let weights = vec![1.0 / window.max(1) as f64; window];
    if window == 0 {
        return Err(SeriesError::InvalidWindow { window, len: n });
    }
    weighted_mavg_coefficients(n, &weights, count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simq_dsp::fft;

    #[test]
    fn circular_average_wraps() {
        // 3-day window at position 0 averages x0, x_{n-1}, x_{n-2}.
        let s = [3.0, 6.0, 9.0, 12.0];
        let ma = moving_average(&s, 3).unwrap();
        assert_eq!(ma[0], (3.0 + 12.0 + 9.0) / 3.0);
        assert_eq!(ma[2], (9.0 + 6.0 + 3.0) / 3.0);
        assert_eq!(ma.len(), s.len());
    }

    #[test]
    fn window_one_is_identity() {
        let s = [1.0, 2.0, 3.0];
        assert_eq!(moving_average(&s, 1).unwrap(), s.to_vec());
    }

    #[test]
    fn plain_average_shrinks() {
        let s = [1.0, 2.0, 3.0, 4.0];
        let ma = plain_moving_average(&s, 2).unwrap();
        assert_eq!(ma, vec![1.5, 2.5, 3.5]);
    }

    #[test]
    fn invalid_windows_rejected() {
        assert!(moving_average(&[1.0], 2).is_err());
        assert!(plain_moving_average(&[1.0, 2.0], 0).is_err());
        assert!(weighted_moving_average(&[1.0], &[]).is_err());
        assert!(moving_average(&[], 1).is_err());
    }

    #[test]
    fn smoothing_reduces_variance() {
        let s: Vec<f64> = (0..64)
            .map(|i| if i % 2 == 0 { 10.0 } else { -10.0 })
            .collect();
        let ma = moving_average(&s, 4).unwrap();
        let var = |v: &[f64]| {
            let m = v.iter().sum::<f64>() / v.len() as f64;
            v.iter().map(|x| (x - m) * (x - m)).sum::<f64>()
        };
        assert!(var(&ma) < var(&s) / 100.0);
    }

    #[test]
    fn frequency_coefficients_match_time_domain() {
        // a ∗ X == DFT(mavg(x)) — the identity the whole indexing scheme
        // rests on.
        let s = [36.0, 38.0, 40.0, 38.0, 42.0, 38.0, 36.0, 36.0, 37.0, 38.0];
        let n = s.len();
        let window = 3;
        let spec = fft::forward_real(&s);
        let coef = mavg_coefficients(n, window, n).unwrap();
        let transformed: Vec<_> = spec.iter().zip(&coef).map(|(x, a)| *x * *a).collect();
        let expected = fft::forward_real(&moving_average(&s, window).unwrap());
        for (t, e) in transformed.iter().zip(&expected) {
            assert!(t.approx_eq(*e, 1e-9), "{t} vs {e}");
        }
    }

    #[test]
    fn weighted_frequency_coefficients_match_time_domain() {
        let s = [5.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let weights = [0.5, 0.3, 0.2]; // trend-prediction style weights
        let spec = fft::forward_real(&s);
        let coef = weighted_mavg_coefficients(s.len(), &weights, s.len()).unwrap();
        let transformed: Vec<_> = spec.iter().zip(&coef).map(|(x, a)| *x * *a).collect();
        let expected = fft::forward_real(&weighted_moving_average(&s, &weights).unwrap());
        for (t, e) in transformed.iter().zip(&expected) {
            assert!(t.approx_eq(*e, 1e-9));
        }
    }

    #[test]
    fn dc_coefficient_is_weight_sum() {
        let coef = weighted_mavg_coefficients(16, &[0.5, 0.25, 0.25], 1).unwrap();
        assert!(coef[0].approx_eq(Complex::real(1.0), 1e-12));
    }

    #[test]
    fn coefficients_have_magnitude_at_most_one_for_convex_weights() {
        // Convex (probability) weights form a low-pass filter: |a_f| ≤ 1.
        let coef = mavg_coefficients(128, 20, 64).unwrap();
        for c in &coef {
            assert!(c.abs() <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn repeated_averaging_flattens_paper_remark() {
        // "if we keep taking the moving average, two series eventually will
        // be the same, i.e., two flat straight lines."
        let mut s: Vec<f64> = (0..32).map(|i| ((i * 13) % 7) as f64).collect();
        for _ in 0..600 {
            s = moving_average(&s, 5).unwrap();
        }
        let first = s[0];
        assert!(s.iter().all(|v| (v - first).abs() < 1e-6));
    }

    #[test]
    fn example_1_1_three_day_moving_average_distance() {
        // Example 1.1: the 3-day moving averages of s1 and s2 are close
        // (paper reports D = 0.47 on the plain moving averages).
        let s1 = [
            36.0, 38.0, 40.0, 38.0, 42.0, 38.0, 36.0, 36.0, 37.0, 38.0, 39.0, 38.0, 40.0, 38.0,
            37.0,
        ];
        let s2 = [
            40.0, 37.0, 37.0, 42.0, 41.0, 35.0, 40.0, 35.0, 34.0, 42.0, 38.0, 35.0, 45.0, 36.0,
            34.0,
        ];
        // The circular moving average reproduces the paper's 0.47 exactly
        // (the difference s1−s2 is built so all but two circular windows
        // cancel: D = √(2·(1/3)²) = √2/3 ≈ 0.4714).
        let c1 = moving_average(&s1, 3).unwrap();
        let c2 = moving_average(&s2, 3).unwrap();
        let dc = simq_dsp::euclidean(&c1, &c2);
        assert!((dc - 0.47).abs() < 0.005, "got {dc}");
        // The plain (non-circular) version leaves a single non-cancelling
        // window: D = 1/3. This pins down that the paper's reported value
        // uses the circular convention.
        let m1 = plain_moving_average(&s1, 3).unwrap();
        let m2 = plain_moving_average(&s2, 3).unwrap();
        let d = simq_dsp::euclidean(&m1, &m2);
        assert!((d - 1.0 / 3.0).abs() < 1e-9, "got {d}");
    }
}
