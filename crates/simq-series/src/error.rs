//! Error types for series operations.

use std::fmt;

/// Errors raised by series transformations and feature extraction.
#[derive(Debug, Clone, PartialEq)]
pub enum SeriesError {
    /// The series is empty where a non-empty one is required.
    EmptySeries,
    /// A moving-average window is invalid for the series length.
    InvalidWindow {
        /// Requested window length.
        window: usize,
        /// Series length.
        len: usize,
    },
    /// A weighted kernel has no weights.
    EmptyKernel,
    /// A warp factor must be at least 1.
    InvalidWarpFactor(usize),
    /// The series is constant, so its normal form (division by the standard
    /// deviation) is undefined.
    ZeroVariance,
    /// Feature extraction asked for more coefficients than the series can
    /// provide.
    TooFewSamples {
        /// Coefficients requested.
        k: usize,
        /// Series length.
        len: usize,
    },
    /// Two feature points or transforms disagree on dimensionality.
    DimensionMismatch {
        /// Expected dimension count.
        expected: usize,
        /// Actual dimension count.
        actual: usize,
    },
    /// A transformation is not safe for the requested representation
    /// (Theorems 2 and 3 of the paper).
    UnsafeTransformation(&'static str),
    /// A row id is already present in the relation (explicit-id inserts on
    /// the persistence restore path).
    DuplicateRowId(u64),
}

impl fmt::Display for SeriesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeriesError::EmptySeries => write!(f, "series must be non-empty"),
            SeriesError::InvalidWindow { window, len } => {
                write!(f, "window {window} invalid for series of length {len}")
            }
            SeriesError::EmptyKernel => write!(f, "moving-average kernel must be non-empty"),
            SeriesError::InvalidWarpFactor(m) => {
                write!(f, "warp factor must be ≥ 1, got {m}")
            }
            SeriesError::ZeroVariance => {
                write!(
                    f,
                    "normal form undefined for constant series (zero variance)"
                )
            }
            SeriesError::TooFewSamples { k, len } => {
                write!(
                    f,
                    "cannot extract {k} coefficients from series of length {len}"
                )
            }
            SeriesError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            SeriesError::UnsafeTransformation(why) => {
                write!(f, "transformation is not safe: {why}")
            }
            SeriesError::DuplicateRowId(id) => {
                write!(f, "row id {id} already exists in the relation")
            }
        }
    }
}

impl std::error::Error for SeriesError {}
