//! # simq-dsp — signal-processing substrate
//!
//! Everything the similarity-query stack needs from digital signal
//! processing, implemented from scratch with the paper's conventions:
//!
//! * [`complex`] — complex arithmetic (rectangular and polar accessors).
//! * [`dft`](mod@dft) — the Discrete Fourier Transform with the symmetric `1/√n`
//!   normalization (paper Equations 1–2), energy, Parseval, Euclidean and
//!   city-block distances.
//! * [`fft`] — `O(n log n)` radix-2 and Bluestein transforms, numerically
//!   identical to [`dft`](mod@dft).
//! * [`conv`] — circular convolution and the convolution–multiplication
//!   theorem (paper Equations 4 and 6), with the `√n` normalization factor
//!   made explicit.
//!
//! The symmetric normalization is load-bearing: it makes Euclidean distance
//! identical in the time and frequency domains (Equation 8), which is what
//! lets the k-coefficient index guarantee no false dismissals (Lemma 1).

#![warn(missing_docs)]

pub mod complex;
pub mod conv;
pub mod dft;
pub mod fft;

pub use complex::Complex;
pub use conv::{circular_conv, circular_conv_fft, pointwise};
pub use dft::{city_block, dft, energy, energy_complex, euclidean, euclidean_complex, idft};
pub use fft::{forward, forward_real, inverse, inverse_real};
