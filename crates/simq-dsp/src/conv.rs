//! Circular convolution and the convolution–multiplication theorem.
//!
//! The paper's Equation 4 defines circular convolution
//! `Conv(x,y)_i = Σ_k x_k · y_{i-k mod n}`, and Equation 6 states the DFT
//! pair `conv(x,y) ⇔ X ∗ Y`. Under the symmetric `1/√n` normalization used
//! throughout (see [`crate::dft`](mod@crate::dft)) the exact identity carries a `√n` factor:
//!
//! ```text
//! DFT(conv(x, y)) = √n · (DFT(x) ∗ DFT(y))
//! ```
//!
//! The paper elides this constant. It matters when *constructing*
//! transformation coefficient vectors: the moving-average transformation
//! `T_mavg = (a, 0)` must satisfy `a ∗ X = DFT(mavg(x))` exactly for the
//! transformed index to return correct distances, so the series crate builds
//! `a` from the closed form `a_f = √n · DFT(kernel)_f`
//! (see `simq_series::mavg`). Tests here pin the `√n` factor down.

use crate::complex::Complex;
use crate::fft;

/// Circular convolution of two equal-length real sequences (Equation 4),
/// computed directly in `O(n²)`.
///
/// # Panics
/// Panics if the sequences have different lengths or are empty.
pub fn circular_conv(x: &[f64], y: &[f64]) -> Vec<f64> {
    let n = x.len();
    assert_eq!(n, y.len(), "circular convolution requires equal lengths");
    assert!(
        n > 0,
        "circular convolution of empty sequences is undefined"
    );
    let mut out = vec![0.0; n];
    for (i, o) in out.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (k, &xk) in x.iter().enumerate() {
            // i - k modulo n, avoiding negative intermediate values.
            let idx = (i + n - (k % n)) % n;
            acc += xk * y[idx];
        }
        *o = acc;
    }
    out
}

/// Circular convolution via the frequency domain in `O(n log n)`:
/// `conv(x,y) = IDFT(√n · (X ∗ Y))`.
///
/// # Panics
/// Panics if the sequences have different lengths or are empty.
pub fn circular_conv_fft(x: &[f64], y: &[f64]) -> Vec<f64> {
    let n = x.len();
    assert_eq!(n, y.len(), "circular convolution requires equal lengths");
    assert!(
        n > 0,
        "circular convolution of empty sequences is undefined"
    );
    let xs = fft::forward_real(x);
    let ys = fft::forward_real(y);
    let scale = (n as f64).sqrt();
    let prod: Vec<Complex> = xs.iter().zip(&ys).map(|(a, b)| *a * *b * scale).collect();
    fft::inverse_real(&prod)
}

/// Element-to-element vector multiplication `X ∗ Y` (the paper's `∗`
/// operator on spectra).
///
/// # Panics
/// Panics if the spectra have different lengths.
pub fn pointwise(x: &[Complex], y: &[Complex]) -> Vec<Complex> {
    assert_eq!(x.len(), y.len(), "pointwise product requires equal lengths");
    x.iter().zip(y).map(|(a, b)| *a * *b).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft;

    #[test]
    fn direct_and_fft_convolution_agree() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        let y = [0.5, 0.25, 0.0, 0.0, 0.0, 0.0, 0.25];
        let a = circular_conv(&x, &y);
        let b = circular_conv_fft(&x, &y);
        for (p, q) in a.iter().zip(&b) {
            assert!((p - q).abs() < 1e-9, "{p} vs {q}");
        }
    }

    #[test]
    fn convolution_multiplication_theorem_with_sqrt_n_factor() {
        // DFT(conv(x,y)) == √n · (X ∗ Y) under the 1/√n convention.
        let x = [3.0, -1.0, 4.0, 1.0, -5.0, 9.0, 2.0, 6.0];
        let y = [1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let conv = circular_conv(&x, &y);
        let lhs = dft::dft(&conv);
        let xs = dft::dft(&x);
        let ys = dft::dft(&y);
        let scale = (x.len() as f64).sqrt();
        for (f, l) in lhs.iter().enumerate() {
            let r = xs[f] * ys[f] * scale;
            assert!(l.approx_eq(r, 1e-9), "coef {f}: {l} vs {r}");
        }
    }

    #[test]
    fn convolution_with_delta_is_identity() {
        let x = [2.0, 4.0, 8.0, 16.0];
        let delta = [1.0, 0.0, 0.0, 0.0];
        assert_eq!(circular_conv(&x, &delta), x.to_vec());
    }

    #[test]
    fn convolution_is_commutative() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [0.2, 0.0, 0.3, 0.5, 0.0];
        let a = circular_conv(&x, &y);
        let b = circular_conv(&y, &x);
        for (p, q) in a.iter().zip(&b) {
            assert!((p - q).abs() < 1e-12);
        }
    }

    #[test]
    fn shift_kernel_rotates_sequence() {
        // Convolving with δ shifted by 1 rotates the sequence: with kernel
        // y = δ_1, out_i = x_{i-1 mod n}.
        let x = [10.0, 20.0, 30.0, 40.0];
        let y = [0.0, 1.0, 0.0, 0.0];
        assert_eq!(circular_conv(&x, &y), vec![40.0, 10.0, 20.0, 30.0]);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn mismatched_lengths_panic() {
        let _ = circular_conv(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn pointwise_product() {
        let a = [Complex::new(1.0, 1.0), Complex::new(2.0, 0.0)];
        let b = [Complex::new(0.0, 1.0), Complex::new(3.0, 0.0)];
        let p = pointwise(&a, &b);
        assert_eq!(p[0], Complex::new(-1.0, 1.0));
        assert_eq!(p[1], Complex::new(6.0, 0.0));
    }
}
