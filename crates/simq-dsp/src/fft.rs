//! Fast Fourier Transform: radix-2 Cooley–Tukey with a Bluestein fallback
//! for arbitrary lengths.
//!
//! All public entry points apply the same symmetric `1/√n` normalization as
//! [`crate::dft`](mod@crate::dft), so [`forward`]/[`inverse`] are drop-in fast replacements
//! for [`crate::dft::dft_complex`]/[`crate::dft::idft`]. Sequence lengths in
//! the paper's experiments range from 64 to 1024 and are powers of two, but
//! real stock series (e.g. 1,067 trading days) are not, so the arbitrary-`n`
//! path is exercised in production, not just in tests.

use crate::complex::Complex;
use std::f64::consts::PI;

/// Returns true when `n` is a power of two (and nonzero).
#[inline]
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// In-place unnormalized radix-2 FFT.
///
/// `inverse` selects the conjugate transform (positive exponent sign).
/// The caller is responsible for normalization.
///
/// # Panics
/// Panics if `buf.len()` is not a power of two.
fn fft_pow2(buf: &mut [Complex], inverse: bool) {
    let n = buf.len();
    assert!(
        is_power_of_two(n),
        "fft_pow2 requires a power-of-two length"
    );
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            buf.swap(i, j);
        }
    }
    // Iterative butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let wlen = Complex::cis(ang);
        let half = len / 2;
        let mut start = 0;
        while start < n {
            let mut w = Complex::ONE;
            for k in 0..half {
                let u = buf[start + k];
                let v = buf[start + k + half] * w;
                buf[start + k] = u + v;
                buf[start + k + half] = u - v;
                w *= wlen;
            }
            start += len;
        }
        len <<= 1;
    }
}

/// Unnormalized DFT of arbitrary length via Bluestein's chirp-z algorithm.
///
/// Expresses an `n`-point DFT as a circular convolution of length `m ≥ 2n-1`
/// (rounded up to a power of two) which is evaluated with [`fft_pow2`].
fn bluestein(x: &[Complex], inverse: bool) -> Vec<Complex> {
    let n = x.len();
    debug_assert!(n > 0);
    let sign = if inverse { 1.0 } else { -1.0 };
    // Chirp: w_k = e^{sign·jπk²/n}. Compute k² mod 2n to avoid the loss of
    // precision of large k² in floating point.
    let chirp: Vec<Complex> = (0..n)
        .map(|k| {
            let kk = (k as u64 * k as u64) % (2 * n as u64);
            Complex::cis(sign * PI * kk as f64 / n as f64)
        })
        .collect();

    let m = (2 * n - 1).next_power_of_two();
    let mut a = vec![Complex::ZERO; m];
    let mut b = vec![Complex::ZERO; m];
    for k in 0..n {
        a[k] = x[k] * chirp[k];
        b[k] = chirp[k].conj();
    }
    // b must be symmetric: b[m - k] = b[k] for k = 1..n.
    for k in 1..n {
        b[m - k] = chirp[k].conj();
    }
    fft_pow2(&mut a, false);
    fft_pow2(&mut b, false);
    for (ai, bi) in a.iter_mut().zip(&b) {
        *ai *= *bi;
    }
    fft_pow2(&mut a, true);
    let scale = 1.0 / m as f64;
    (0..n).map(|k| a[k] * chirp[k] * scale).collect()
}

/// Unnormalized forward/inverse DFT dispatching between radix-2 and
/// Bluestein.
fn transform_unnormalized(x: &[Complex], inverse: bool) -> Vec<Complex> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    if is_power_of_two(n) {
        let mut buf = x.to_vec();
        fft_pow2(&mut buf, inverse);
        buf
    } else {
        bluestein(x, inverse)
    }
}

/// Normalized forward FFT of a complex sequence: identical to
/// [`crate::dft::dft_complex`] (Equation 1) but `O(n log n)`.
pub fn forward(x: &[Complex]) -> Vec<Complex> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    let scale = 1.0 / (n as f64).sqrt();
    let mut out = transform_unnormalized(x, false);
    for z in &mut out {
        *z = *z * scale;
    }
    out
}

/// Normalized forward FFT of a real sequence.
pub fn forward_real(x: &[f64]) -> Vec<Complex> {
    let xc: Vec<Complex> = x.iter().map(|&v| Complex::real(v)).collect();
    forward(&xc)
}

/// Normalized inverse FFT: identical to [`crate::dft::idft`] (Equation 2)
/// but `O(n log n)`.
pub fn inverse(x: &[Complex]) -> Vec<Complex> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    let scale = 1.0 / (n as f64).sqrt();
    let mut out = transform_unnormalized(x, true);
    for z in &mut out {
        *z = *z * scale;
    }
    out
}

/// Normalized inverse FFT projected onto the reals (for spectra of real
/// series).
pub fn inverse_real(x: &[Complex]) -> Vec<f64> {
    inverse(x).into_iter().map(|z| z.re).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft;

    fn assert_spectra_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (p, q) in a.iter().zip(b) {
            assert!(p.approx_eq(*q, tol), "{p} vs {q}");
        }
    }

    #[test]
    fn fft_matches_dft_on_powers_of_two() {
        for n in [1usize, 2, 4, 8, 64, 128] {
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin() + i as f64).collect();
            assert_spectra_close(&forward_real(&x), &dft::dft(&x), 1e-8);
        }
    }

    #[test]
    fn fft_matches_dft_on_arbitrary_lengths() {
        for n in [3usize, 5, 6, 7, 12, 15, 100, 127, 1067 / 7] {
            let x: Vec<f64> = (0..n).map(|i| ((i * i) % 17) as f64 - 8.0).collect();
            assert_spectra_close(&forward_real(&x), &dft::dft(&x), 1e-7);
        }
    }

    #[test]
    fn inverse_roundtrips() {
        for n in [8usize, 10, 33, 128] {
            let x: Vec<f64> = (0..n).map(|i| (i as f64).cos() * 3.0).collect();
            let back = inverse_real(&forward_real(&x));
            for (a, b) in x.iter().zip(&back) {
                assert!((a - b).abs() < 1e-8, "{a} vs {b} at n={n}");
            }
        }
    }

    #[test]
    fn parseval_through_fft() {
        let x: Vec<f64> = (0..1024).map(|i| ((i % 91) as f64) / 7.0 - 6.0).collect();
        let e_time = dft::energy(&x);
        let e_freq = dft::energy_complex(&forward_real(&x));
        assert!((e_time - e_freq).abs() / e_time < 1e-10);
    }

    #[test]
    fn length_1067_stock_sized_series() {
        // The real stock corpus in the paper has 1,067 series; a non-power-of-
        // two length exercises Bluestein end to end.
        let x: Vec<f64> = (0..1067).map(|i| 20.0 + ((i * 37) % 80) as f64).collect();
        let spec = forward_real(&x);
        let back = inverse_real(&spec);
        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_is_empty() {
        assert!(forward(&[]).is_empty());
        assert!(inverse(&[]).is_empty());
    }

    #[test]
    fn single_element_is_identity() {
        let spec = forward_real(&[42.0]);
        assert!(spec[0].approx_eq(Complex::real(42.0), 1e-12));
    }
}
