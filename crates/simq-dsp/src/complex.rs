//! Complex number arithmetic.
//!
//! The reproduction implements its own complex type rather than pulling in an
//! external crate: complex arithmetic is part of the paper's surface (feature
//! vectors, safe transformations and search rectangles are all defined over
//! complex numbers) and the operations needed are small and closed.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number in rectangular (Cartesian) representation.
///
/// `re` and `im` are the real and imaginary components, matching the paper's
/// `Re(x)` and `Im(x)` notation. Polar accessors [`Complex::abs`] and
/// [`Complex::angle`] correspond to `Abs(x)` and `Angle(x)`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real component.
    pub re: f64,
    /// Imaginary component.
    pub im: f64,
}

impl Complex {
    /// The additive identity `0 + 0j`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0j`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `j`.
    pub const J: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates a complex number from polar components: `abs * e^(j*angle)`.
    #[inline]
    pub fn from_polar(abs: f64, angle: f64) -> Self {
        Complex {
            re: abs * angle.cos(),
            im: abs * angle.sin(),
        }
    }

    /// `e^(j*angle)` — a unit-magnitude complex number.
    #[inline]
    pub fn cis(angle: f64) -> Self {
        Self::from_polar(1.0, angle)
    }

    /// Magnitude (`Abs(x)` in the paper).
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude; cheaper than [`Complex::abs`] when only comparisons
    /// or energies are needed.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Phase angle in `(-π, π]` (`Angle(x)` in the paper).
    ///
    /// `atan2` returns values in `[-π, π]`; `-π` is normalized to `π` so the
    /// result is unique on the half-open interval used by the polar feature
    /// space.
    #[inline]
    pub fn angle(self) -> f64 {
        let a = self.im.atan2(self.re);
        if a == -std::f64::consts::PI {
            std::f64::consts::PI
        } else {
            a
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Multiplicative inverse. Returns non-finite components when `self` is
    /// zero, mirroring `f64` division semantics.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Complex {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// True when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Distance `|self - other|` in the complex plane.
    #[inline]
    pub fn dist(self, other: Complex) -> f64 {
        (self - other).abs()
    }

    /// Componentwise approximate equality with absolute tolerance `tol`.
    #[inline]
    pub fn approx_eq(self, other: Complex, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w = z * w⁻¹ by definition
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, Add::add)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn add_sub_roundtrip() {
        let a = Complex::new(1.5, -2.0);
        let b = Complex::new(-0.25, 4.0);
        assert_eq!(a + b - b, a);
    }

    #[test]
    fn multiplication_matches_expansion() {
        // (2 - 3j) * (-5 + 5j) used by the paper's Srect counterexample.
        let s = Complex::new(2.0, -3.0);
        let p = Complex::new(-5.0, -5.0);
        assert_eq!(s * p, Complex::new(-25.0, 5.0));
        let q = Complex::new(5.0, 5.0);
        assert_eq!(s * q, Complex::new(25.0, -5.0));
        let r = Complex::new(-2.0, 2.0);
        assert_eq!(s * r, Complex::new(2.0, 10.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(3.0, 4.0);
        let b = Complex::new(-1.0, 2.0);
        let c = a * b / b;
        assert!(c.approx_eq(a, 1e-12));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::from_polar(2.5, 1.1);
        assert!((z.abs() - 2.5).abs() < 1e-12);
        assert!((z.angle() - 1.1).abs() < 1e-12);
    }

    #[test]
    fn angle_is_half_open() {
        // A number on the negative real axis gets angle +π, never -π.
        let z = Complex::new(-1.0, 0.0);
        assert_eq!(z.angle(), PI);
        let w = Complex::new(-1.0, -0.0);
        assert_eq!(w.angle(), PI);
    }

    #[test]
    fn conj_and_norm() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z.conj(), Complex::new(3.0, 4.0));
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.abs(), 5.0);
    }

    #[test]
    fn cis_is_unit_magnitude() {
        for k in 0..16 {
            let z = Complex::cis(2.0 * PI * k as f64 / 16.0);
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sum_folds() {
        let zs = [Complex::new(1.0, 1.0), Complex::new(2.0, -3.0)];
        let s: Complex = zs.iter().copied().sum();
        assert_eq!(s, Complex::new(3.0, -2.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2j");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2j");
    }

    #[test]
    fn recip_of_zero_is_non_finite() {
        assert!(!Complex::ZERO.recip().is_finite());
    }
}
