//! The Discrete Fourier Transform with the paper's `1/√n` convention.
//!
//! The paper (following Agrawal–Faloutsos–Swami and
//! Faloutsos–Ranganathan–Manolopoulos) defines
//!
//! ```text
//! X_f = (1/√n) Σ_{t=0}^{n-1} x_t e^{-j2πtf/n}
//! x_t = (1/√n) Σ_{f=0}^{n-1} X_f e^{+j2πtf/n}
//! ```
//!
//! Under this *symmetric* normalization Parseval's relation holds in the
//! plain form `E(x) = E(X)`, so the Euclidean distance between two series is
//! *identical* in the time and frequency domains — the property that makes
//! the k-coefficient index lossless with respect to dismissals (Lemma 1).
//!
//! [`dft`]/[`idft`] are the direct `O(n²)` reference implementations used by
//! tests; [`crate::fft`] provides the fast path and both agree to within
//! numerical tolerance for every length (property-tested).

use crate::complex::Complex;
use std::f64::consts::PI;

/// Computes the normalized DFT of a real-valued sequence.
///
/// This is the `O(n²)` reference implementation of the paper's Equation 1.
/// For indexing-scale work prefer [`crate::fft::forward_real`], which is
/// algebraically identical.
///
/// An empty input produces an empty output.
pub fn dft(x: &[f64]) -> Vec<Complex> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    let scale = 1.0 / (n as f64).sqrt();
    let mut out = Vec::with_capacity(n);
    for f in 0..n {
        let mut acc = Complex::ZERO;
        for (t, &xt) in x.iter().enumerate() {
            // e^{-j 2π t f / n}
            let ang = -2.0 * PI * (t as f64) * (f as f64) / (n as f64);
            acc += Complex::cis(ang) * xt;
        }
        out.push(acc * scale);
    }
    out
}

/// Computes the normalized DFT of a complex-valued sequence (Equation 1
/// extended to complex inputs, used when chaining transforms in the
/// frequency domain).
pub fn dft_complex(x: &[Complex]) -> Vec<Complex> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    let scale = 1.0 / (n as f64).sqrt();
    let mut out = Vec::with_capacity(n);
    for f in 0..n {
        let mut acc = Complex::ZERO;
        for (t, &xt) in x.iter().enumerate() {
            let ang = -2.0 * PI * (t as f64) * (f as f64) / (n as f64);
            acc += Complex::cis(ang) * xt;
        }
        out.push(acc * scale);
    }
    out
}

/// Computes the normalized inverse DFT, returning a complex sequence
/// (Equation 2). For real time series the imaginary parts are numerically
/// zero; use [`idft_real`] to project them away.
pub fn idft(x: &[Complex]) -> Vec<Complex> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    let scale = 1.0 / (n as f64).sqrt();
    let mut out = Vec::with_capacity(n);
    for t in 0..n {
        let mut acc = Complex::ZERO;
        for (f, &xf) in x.iter().enumerate() {
            let ang = 2.0 * PI * (t as f64) * (f as f64) / (n as f64);
            acc += Complex::cis(ang) * xf;
        }
        out.push(acc * scale);
    }
    out
}

/// Inverse DFT projected onto the reals.
///
/// Intended for spectra of real series (possibly after applying a
/// transformation with conjugate-symmetric coefficients); the discarded
/// imaginary parts are numerical noise in that case.
pub fn idft_real(x: &[Complex]) -> Vec<f64> {
    idft(x).into_iter().map(|z| z.re).collect()
}

/// Signal energy `E(x) = Σ |x_t|²` (Equation 3).
pub fn energy(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum()
}

/// Spectrum energy `E(X) = Σ |X_f|²`; equals [`energy`] of the time-domain
/// signal by Parseval's relation (Equation 7).
pub fn energy_complex(x: &[Complex]) -> f64 {
    x.iter().map(|z| z.norm_sqr()).sum()
}

/// Euclidean distance between two real sequences (the paper's `D`).
///
/// # Panics
/// Panics if the sequences have different lengths; distance between
/// different-length series is undefined in the model (use time warping to
/// align lengths first).
pub fn euclidean(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(
        x.len(),
        y.len(),
        "euclidean distance requires equal-length sequences"
    );
    x.iter()
        .zip(y)
        .map(|(a, b)| {
            let d = a - b;
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

/// Euclidean distance between two complex spectra; equals [`euclidean`] of
/// the corresponding time series by Parseval (Equation 8).
///
/// # Panics
/// Panics if the spectra have different lengths.
pub fn euclidean_complex(x: &[Complex], y: &[Complex]) -> f64 {
    assert_eq!(
        x.len(),
        y.len(),
        "euclidean distance requires equal-length spectra"
    );
    x.iter()
        .zip(y)
        .map(|(a, b)| (*a - *b).norm_sqr())
        .sum::<f64>()
        .sqrt()
}

/// City-block (L1) distance, the alternative ground metric the paper
/// mentions in the introduction.
///
/// # Panics
/// Panics if the sequences have different lengths.
pub fn city_block(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(
        x.len(),
        y.len(),
        "city-block distance requires equal-length sequences"
    );
    x.iter().zip(y).map(|(a, b)| (a - b).abs()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn dft_of_constant_concentrates_in_dc() {
        let x = vec![5.0; 8];
        let spec = dft(&x);
        // DC term = (1/√8)·Σ5 = 40/√8 = 5·√8.
        assert_close(spec[0].re, 5.0 * 8f64.sqrt(), 1e-9);
        for z in &spec[1..] {
            assert!(z.abs() < 1e-9);
        }
    }

    #[test]
    fn idft_inverts_dft() {
        let x = vec![1.0, -2.0, 3.5, 0.0, 7.25, -1.125, 2.0, 2.0, 9.0];
        let back = idft_real(&dft(&x));
        for (a, b) in x.iter().zip(&back) {
            assert_close(*a, *b, 1e-9);
        }
    }

    #[test]
    fn parseval_holds_with_symmetric_normalization() {
        let x = vec![36.0, 38.0, 40.0, 38.0, 42.0, 38.0, 36.0];
        assert_close(energy(&x), energy_complex(&dft(&x)), 1e-8);
    }

    #[test]
    fn distance_preserved_in_frequency_domain() {
        // Equation 8: D(x,y) = D(X,Y).
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let y = vec![2.0, 2.0, 2.0, 5.0, 5.0, 5.0];
        let d_time = euclidean(&x, &y);
        let d_freq = euclidean_complex(&dft(&x), &dft(&y));
        assert_close(d_time, d_freq, 1e-9);
    }

    #[test]
    fn paper_example_1_1_distance() {
        // Example 1.1: D(s1, s2) = 11.92 (to two decimals).
        let s1 = [
            36.0, 38.0, 40.0, 38.0, 42.0, 38.0, 36.0, 36.0, 37.0, 38.0, 39.0, 38.0, 40.0, 38.0,
            37.0,
        ];
        let s2 = [
            40.0, 37.0, 37.0, 42.0, 41.0, 35.0, 40.0, 35.0, 34.0, 42.0, 38.0, 35.0, 45.0, 36.0,
            34.0,
        ];
        let d = euclidean(&s1, &s2);
        assert_close(d, 11.92, 0.005);
    }

    #[test]
    fn empty_input_gives_empty_spectrum() {
        assert!(dft(&[]).is_empty());
        assert!(idft(&[]).is_empty());
    }

    #[test]
    fn energy_of_empty_is_zero() {
        assert_eq!(energy(&[]), 0.0);
    }

    #[test]
    fn city_block_simple() {
        assert_eq!(city_block(&[1.0, 2.0], &[4.0, 0.0]), 5.0);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn euclidean_rejects_mismatched_lengths() {
        let _ = euclidean(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn dft_complex_matches_real_dft_on_real_input() {
        let x = vec![3.0, 1.0, 4.0, 1.0, 5.0];
        let xc: Vec<Complex> = x.iter().map(|&v| Complex::real(v)).collect();
        let a = dft(&x);
        let b = dft_complex(&xc);
        for (p, q) in a.iter().zip(&b) {
            assert!(p.approx_eq(*q, 1e-10));
        }
    }
}
