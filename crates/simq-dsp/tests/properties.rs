//! Property tests for the DSP substrate: transform identities that must
//! hold for arbitrary inputs.

use proptest::prelude::*;
use simq_dsp::complex::Complex;
use simq_dsp::{circular_conv, circular_conv_fft, dft, energy, energy_complex, euclidean, fft};

fn series(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..100.0, 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// forward ∘ inverse = id for arbitrary lengths (radix-2 + Bluestein).
    #[test]
    fn fft_roundtrip(x in series(96)) {
        let back = fft::inverse_real(&fft::forward_real(&x));
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    /// FFT equals the O(n²) reference DFT.
    #[test]
    fn fft_matches_dft(x in series(48)) {
        let a = fft::forward_real(&x);
        let b = dft::dft(&x);
        for (p, q) in a.iter().zip(&b) {
            prop_assert!(p.approx_eq(*q, 1e-6));
        }
    }

    /// Parseval: energy is preserved by the symmetric normalization.
    #[test]
    fn parseval(x in series(96)) {
        let e_time = energy(&x);
        let e_freq = energy_complex(&fft::forward_real(&x));
        prop_assert!((e_time - e_freq).abs() <= 1e-6 * (1.0 + e_time));
    }

    /// Distance preservation (Equation 8) for equal-length pairs.
    #[test]
    fn distance_preserved(pair in series(64).prop_flat_map(|x| {
        let n = x.len();
        (Just(x), prop::collection::vec(-100.0f64..100.0, n))
    })) {
        let (x, y) = pair;
        let d_time = euclidean(&x, &y);
        let d_freq = simq_dsp::euclidean_complex(
            &fft::forward_real(&x),
            &fft::forward_real(&y),
        );
        prop_assert!((d_time - d_freq).abs() <= 1e-6 * (1.0 + d_time));
    }

    /// Linearity of the DFT (Equation 5).
    #[test]
    fn linearity(pair in series(48).prop_flat_map(|x| {
        let n = x.len();
        (Just(x), prop::collection::vec(-100.0f64..100.0, n))
    }), a in -5.0f64..5.0, b in -5.0f64..5.0) {
        let (x, y) = pair;
        let combo: Vec<f64> = x.iter().zip(&y).map(|(p, q)| a * p + b * q).collect();
        let lhs = fft::forward_real(&combo);
        let fx = fft::forward_real(&x);
        let fy = fft::forward_real(&y);
        for (i, l) in lhs.iter().enumerate() {
            let r = fx[i] * a + fy[i] * b;
            prop_assert!(l.approx_eq(r, 1e-6));
        }
    }

    /// Direct and FFT-based circular convolution agree.
    #[test]
    fn convolution_agree(pair in series(48).prop_flat_map(|x| {
        let n = x.len();
        (Just(x), prop::collection::vec(-10.0f64..10.0, n))
    })) {
        let (x, y) = pair;
        let a = circular_conv(&x, &y);
        let b = circular_conv_fft(&x, &y);
        for (p, q) in a.iter().zip(&b) {
            prop_assert!((p - q).abs() < 1e-5, "{p} vs {q}");
        }
    }

    /// Complex field identities: associativity/distributivity within
    /// floating-point tolerance, conjugation anti-homomorphism.
    #[test]
    fn complex_identities(
        ar in -50.0f64..50.0, ai in -50.0f64..50.0,
        br in -50.0f64..50.0, bi in -50.0f64..50.0,
        cr in -50.0f64..50.0, ci in -50.0f64..50.0,
    ) {
        let a = Complex::new(ar, ai);
        let b = Complex::new(br, bi);
        let c = Complex::new(cr, ci);
        let lhs = (a * b) * c;
        let rhs = a * (b * c);
        prop_assert!(lhs.approx_eq(rhs, 1e-6 * (1.0 + lhs.abs())));
        let dist = a * (b + c);
        let expand = a * b + a * c;
        prop_assert!(dist.approx_eq(expand, 1e-6 * (1.0 + dist.abs())));
        prop_assert!((a * b).conj().approx_eq(a.conj() * b.conj(), 1e-9 * (1.0 + (a * b).abs())));
        prop_assert!(((a * b).abs() - a.abs() * b.abs()).abs() <= 1e-6 * (1.0 + a.abs() * b.abs()));
    }
}
