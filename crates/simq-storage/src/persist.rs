//! Plain-text persistence for relations (the import/export path; binary
//! cold starts live in [`crate::snapshot`]).
//!
//! A deliberately tiny line format (no external dependencies):
//!
//! ```text
//! # simq-relation v2
//! # name=<relation> len=<series length> k=<coeffs> rep=<polar|rect> stats=<0|1>
//! <row id>,<row name>,<v1>,<v2>,…,<vn>
//! ```
//!
//! Values round-trip through `f64`'s shortest-exact formatting, so
//! save → load reproduces the relation bit-for-bit. `v2` carries the row
//! id as the first field, so save → load keeps id-based references (query
//! `ROW <id>` sources, result comparisons) valid; the `v1` format — the
//! same lines without the id field — is still read, assigning sequential
//! ids in file order.
//!
//! Malformed input of any kind (bad header fields, non-numeric values,
//! truncated rows, duplicate ids) produces [`LoadError::Format`] with the
//! offending line number — never a panic.

use crate::relation::SeriesRelation;
use simq_series::features::{FeatureScheme, Representation};
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Serializes a relation to the text format.
pub fn to_string(relation: &SeriesRelation) -> String {
    let scheme = relation.scheme();
    let rep = match scheme.rep {
        Representation::Polar => "polar",
        Representation::Rectangular => "rect",
    };
    let mut out = String::new();
    out.push_str("# simq-relation v2\n");
    let _ = writeln!(
        out,
        "# name={} len={} k={} rep={} stats={}",
        relation.name(),
        relation.series_len(),
        scheme.k,
        rep,
        u8::from(scheme.include_stats),
    );
    for row in relation.rows() {
        let _ = write!(out, "{},{}", row.id, row.name);
        for v in &row.raw {
            let _ = write!(out, ",{v}");
        }
        out.push('\n');
    }
    out
}

/// Errors from parsing the text format.
#[derive(Debug)]
pub enum LoadError {
    /// I/O failure.
    Io(io::Error),
    /// Structural problem with the file, with a human-readable reason.
    Format(String),
    /// A row failed feature extraction.
    Series(simq_series::error::SeriesError),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::Format(m) => write!(f, "format error: {m}"),
            LoadError::Series(e) => write!(f, "series error: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Parses a relation from the text format (`v2` with row ids, or legacy
/// `v1` without — ids are then assigned sequentially in file order).
pub fn from_str(text: &str) -> Result<SeriesRelation, LoadError> {
    let mut lines = text.lines();
    let magic = lines
        .next()
        .ok_or_else(|| LoadError::Format("empty file".into()))?;
    let with_ids = match magic.trim() {
        "# simq-relation v1" => false,
        "# simq-relation v2" => true,
        _ => {
            return Err(LoadError::Format(format!(
                "line 1: bad magic line {magic:?}"
            )))
        }
    };
    let header = lines
        .next()
        .ok_or_else(|| LoadError::Format("line 2: missing header".into()))?;
    let mut name = String::new();
    let mut len = 0usize;
    let mut k = 0usize;
    let mut rep = Representation::Polar;
    let mut stats = true;
    for field in header.trim_start_matches('#').split_whitespace() {
        let (key, value) = field
            .split_once('=')
            .ok_or_else(|| LoadError::Format(format!("line 2: bad header field {field:?}")))?;
        match key {
            "name" => name = value.to_string(),
            "len" => {
                len = value
                    .parse()
                    .map_err(|_| LoadError::Format(format!("line 2: bad len {value:?}")))?
            }
            "k" => {
                k = value
                    .parse()
                    .map_err(|_| LoadError::Format(format!("line 2: bad k {value:?}")))?
            }
            "rep" => {
                rep = match value {
                    "polar" => Representation::Polar,
                    "rect" => Representation::Rectangular,
                    other => {
                        return Err(LoadError::Format(format!(
                            "line 2: unknown representation {other:?}"
                        )))
                    }
                }
            }
            "stats" => stats = value != "0",
            other => {
                return Err(LoadError::Format(format!(
                    "line 2: unknown header key {other:?}"
                )))
            }
        }
    }
    if len == 0 || k == 0 {
        return Err(LoadError::Format("line 2: header missing len or k".into()));
    }
    if len <= k {
        // `SeriesRelation::new` asserts this; turn a malformed header into
        // an error instead of a panic.
        return Err(LoadError::Format(format!(
            "line 2: len {len} cannot provide k={k} coefficients"
        )));
    }
    let scheme = FeatureScheme::new(k, rep, stats);
    let mut relation = SeriesRelation::new(name, len, scheme);
    for (lineno, line) in lines.enumerate() {
        let lineno = lineno + 3; // 1-based; lines 1–2 are magic and header
        if line.trim().is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split(',');
        let id =
            if with_ids {
                let field = parts
                    .next()
                    .ok_or_else(|| LoadError::Format(format!("line {lineno}: empty")))?;
                Some(field.trim().parse::<u64>().map_err(|_| {
                    LoadError::Format(format!("line {lineno}: bad row id {field:?}"))
                })?)
            } else {
                None
            };
        let row_name = parts
            .next()
            .ok_or_else(|| LoadError::Format(format!("line {lineno}: missing row name")))?;
        let values: Result<Vec<f64>, _> = parts.map(str::parse::<f64>).collect();
        let values = values.map_err(|e| LoadError::Format(format!("line {lineno}: {e}")))?;
        if values.len() != len {
            // A truncated (or overlong) row is a file-format problem, not a
            // series problem — report it with its line number.
            return Err(LoadError::Format(format!(
                "line {lineno}: expected {len} values, got {}",
                values.len()
            )));
        }
        let result = match id {
            Some(id) => relation.insert_with_id(id, row_name, values),
            None => relation.insert(row_name, values).map(|_| 0),
        };
        match result {
            Ok(_) => {}
            Err(simq_series::error::SeriesError::DuplicateRowId(id)) => {
                return Err(LoadError::Format(format!(
                    "line {lineno}: duplicate row id {id}"
                )))
            }
            Err(e) => return Err(LoadError::Series(e)),
        }
    }
    Ok(relation)
}

/// Saves a relation to a file.
///
/// # Errors
/// I/O errors from the filesystem.
pub fn save(relation: &SeriesRelation, path: impl AsRef<Path>) -> io::Result<()> {
    fs::write(path, to_string(relation))
}

/// Loads a relation from a file.
///
/// # Errors
/// [`LoadError`] on I/O or parse failure.
pub fn load(path: impl AsRef<Path>) -> Result<SeriesRelation, LoadError> {
    from_str(&fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_relation() -> SeriesRelation {
        let mut rel = SeriesRelation::new(
            "demo",
            16,
            FeatureScheme::new(2, Representation::Polar, true),
        );
        for i in 0..5 {
            let s: Vec<f64> = (0..16)
                .map(|t| 10.0 + i as f64 * 0.5 + ((t + i) as f64 * 0.7).sin())
                .collect();
            rel.insert(format!("row{i}"), s).unwrap();
        }
        rel
    }

    #[test]
    fn roundtrip_is_exact() {
        let rel = sample_relation();
        let text = to_string(&rel);
        let back = from_str(&text).unwrap();
        assert_eq!(back.name(), rel.name());
        assert_eq!(back.len(), rel.len());
        assert_eq!(back.series_len(), rel.series_len());
        assert_eq!(back.scheme(), rel.scheme());
        for (a, b) in rel.rows().zip(back.rows()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.name, b.name);
            assert_eq!(a.raw, b.raw); // bit-exact
        }
    }

    #[test]
    fn v2_roundtrip_preserves_noncontiguous_ids() {
        let mut rel = SeriesRelation::new(
            "gaps",
            16,
            FeatureScheme::new(2, Representation::Polar, true),
        );
        for id in [5u64, 2, 9] {
            let s: Vec<f64> = (0..16)
                .map(|t| 3.0 + id as f64 + (t as f64 * 0.4).sin())
                .collect();
            rel.insert_with_id(id, format!("row{id}"), s).unwrap();
        }
        let back = from_str(&to_string(&rel)).unwrap();
        let ids: Vec<u64> = back.rows().map(|r| r.id).collect();
        assert_eq!(ids, vec![5, 2, 9]);
        assert_eq!(back.row(9).unwrap().name, "row9");
        assert!(back.row(0).is_none());
    }

    #[test]
    fn reads_legacy_v1_with_sequential_ids() {
        let text = "# simq-relation v1\n# name=old len=4 k=1 rep=rect stats=1\n\
                    a,1,2,3,4\nb,2,3,4,6\n";
        let rel = from_str(text).unwrap();
        let ids: Vec<u64> = rel.rows().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1]);
        assert_eq!(rel.row(1).unwrap().name, "b");
    }

    #[test]
    fn file_roundtrip() {
        let rel = sample_relation();
        let dir = std::env::temp_dir().join("simq-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rel.txt");
        save(&rel, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.len(), rel.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(matches!(from_str("nope"), Err(LoadError::Format(_))));
        assert!(matches!(
            from_str("# simq-relation v9\n"),
            Err(LoadError::Format(_))
        ));
    }

    #[test]
    fn rejects_bad_values() {
        let text = "# simq-relation v1\n# name=x len=4 k=1 rep=polar stats=1\nrow,1,2,3,abc\n";
        let err = from_str(text).unwrap_err();
        let LoadError::Format(msg) = err else {
            panic!("expected format error, got {err:?}");
        };
        assert!(msg.starts_with("line 3:"), "{msg}");
    }

    #[test]
    fn truncated_final_line_reports_line_number() {
        // Three good rows, then a final row cut off mid-series.
        let rel = sample_relation();
        let mut text = to_string(&rel);
        text.truncate(text.trim_end().rfind(',').unwrap());
        text.push('\n');
        let err = from_str(&text).unwrap_err();
        let LoadError::Format(msg) = err else {
            panic!("expected format error, got {err:?}");
        };
        assert!(msg.starts_with("line 7:"), "{msg}");
        assert!(msg.contains("expected 16 values, got 15"), "{msg}");
    }

    #[test]
    fn rejects_wrong_length_row() {
        let text = "# simq-relation v1\n# name=x len=4 k=1 rep=polar stats=1\nrow,1,2,3\n";
        let err = from_str(text).unwrap_err();
        let LoadError::Format(msg) = err else {
            panic!("expected format error, got {err:?}");
        };
        assert!(msg.contains("line 3"), "{msg}");
        assert!(msg.contains("expected 4 values, got 3"), "{msg}");
    }

    #[test]
    fn rejects_malformed_header_fields() {
        for (text, needle) in [
            (
                "# simq-relation v2\n# name=x len=4 k=1 rep polar stats=1\n",
                "bad header field",
            ),
            ("# simq-relation v2\n# name=x len=four k=1\n", "bad len"),
            ("# simq-relation v2\n# name=x len=4 k=zz\n", "bad k"),
            (
                "# simq-relation v2\n# name=x len=4 k=1 rep=banana\n",
                "unknown representation",
            ),
            (
                "# simq-relation v2\n# name=x len=4 k=1 color=red\n",
                "unknown header key",
            ),
            (
                "# simq-relation v2\n# name=x len=0 k=1\n",
                "missing len or k",
            ),
            ("# simq-relation v2\n", "missing header"),
        ] {
            let err = from_str(text).unwrap_err();
            let LoadError::Format(msg) = err else {
                panic!("expected format error for {text:?}, got {err:?}");
            };
            assert!(msg.contains(needle), "{text:?} → {msg}");
            assert!(msg.contains("line 2"), "{text:?} → {msg}");
        }
    }

    #[test]
    fn header_len_not_above_k_is_an_error_not_a_panic() {
        let text = "# simq-relation v2\n# name=x len=4 k=9 rep=polar stats=1\n";
        let err = from_str(text).unwrap_err();
        let LoadError::Format(msg) = err else {
            panic!("expected format error, got {err:?}");
        };
        assert!(msg.contains("cannot provide"), "{msg}");
    }

    #[test]
    fn rejects_bad_and_duplicate_ids() {
        let good = "# simq-relation v2\n# name=x len=4 k=1 rep=rect stats=1\n";
        let err = from_str(&format!("{good}seven,a,1,2,3,4\n")).unwrap_err();
        let LoadError::Format(msg) = err else {
            panic!("expected format error, got {err:?}");
        };
        assert!(
            msg.contains("line 3") && msg.contains("bad row id"),
            "{msg}"
        );
        let err = from_str(&format!("{good}0,a,1,2,3,4\n0,b,2,3,4,6\n")).unwrap_err();
        let LoadError::Format(msg) = err else {
            panic!("expected format error, got {err:?}");
        };
        assert!(
            msg.contains("line 4") && msg.contains("duplicate row id"),
            "{msg}"
        );
    }

    #[test]
    fn row_level_series_errors_still_surface() {
        // A constant series passes the length check but fails extraction.
        let text = "# simq-relation v2\n# name=x len=4 k=1 rep=polar stats=1\n0,flat,5,5,5,5\n";
        assert!(matches!(from_str(text), Err(LoadError::Series(_))));
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let rel = sample_relation();
        let mut text = to_string(&rel);
        text.push_str("\n# trailing comment\n\n");
        let back = from_str(&text).unwrap();
        assert_eq!(back.len(), rel.len());
    }
}
