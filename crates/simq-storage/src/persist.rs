//! Plain-text persistence for relations.
//!
//! A deliberately tiny line format (no external dependencies):
//!
//! ```text
//! # simq-relation v1
//! # name=<relation> len=<series length> k=<coeffs> rep=<polar|rect> stats=<0|1>
//! <row name>,<v1>,<v2>,…,<vn>
//! ```
//!
//! Values round-trip through `f64`'s shortest-exact formatting, so
//! save → load reproduces the relation bit-for-bit.

use crate::relation::SeriesRelation;
use simq_series::features::{FeatureScheme, Representation};
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Serializes a relation to the text format.
pub fn to_string(relation: &SeriesRelation) -> String {
    let scheme = relation.scheme();
    let rep = match scheme.rep {
        Representation::Polar => "polar",
        Representation::Rectangular => "rect",
    };
    let mut out = String::new();
    out.push_str("# simq-relation v1\n");
    let _ = writeln!(
        out,
        "# name={} len={} k={} rep={} stats={}",
        relation.name(),
        relation.series_len(),
        scheme.k,
        rep,
        u8::from(scheme.include_stats),
    );
    for row in relation.rows() {
        out.push_str(&row.name);
        for v in &row.raw {
            let _ = write!(out, ",{v}");
        }
        out.push('\n');
    }
    out
}

/// Errors from parsing the text format.
#[derive(Debug)]
pub enum LoadError {
    /// I/O failure.
    Io(io::Error),
    /// Structural problem with the file, with a human-readable reason.
    Format(String),
    /// A row failed feature extraction.
    Series(simq_series::error::SeriesError),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::Format(m) => write!(f, "format error: {m}"),
            LoadError::Series(e) => write!(f, "series error: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Parses a relation from the text format.
pub fn from_str(text: &str) -> Result<SeriesRelation, LoadError> {
    let mut lines = text.lines();
    let magic = lines
        .next()
        .ok_or_else(|| LoadError::Format("empty file".into()))?;
    if magic.trim() != "# simq-relation v1" {
        return Err(LoadError::Format(format!("bad magic line: {magic:?}")));
    }
    let header = lines
        .next()
        .ok_or_else(|| LoadError::Format("missing header".into()))?;
    let mut name = String::new();
    let mut len = 0usize;
    let mut k = 0usize;
    let mut rep = Representation::Polar;
    let mut stats = true;
    for field in header.trim_start_matches('#').split_whitespace() {
        let (key, value) = field
            .split_once('=')
            .ok_or_else(|| LoadError::Format(format!("bad header field {field:?}")))?;
        match key {
            "name" => name = value.to_string(),
            "len" => {
                len = value
                    .parse()
                    .map_err(|_| LoadError::Format(format!("bad len {value:?}")))?
            }
            "k" => {
                k = value
                    .parse()
                    .map_err(|_| LoadError::Format(format!("bad k {value:?}")))?
            }
            "rep" => {
                rep = match value {
                    "polar" => Representation::Polar,
                    "rect" => Representation::Rectangular,
                    other => {
                        return Err(LoadError::Format(format!(
                            "unknown representation {other:?}"
                        )))
                    }
                }
            }
            "stats" => stats = value != "0",
            other => return Err(LoadError::Format(format!("unknown header key {other:?}"))),
        }
    }
    if len == 0 || k == 0 {
        return Err(LoadError::Format("header missing len or k".into()));
    }
    let scheme = FeatureScheme::new(k, rep, stats);
    let mut relation = SeriesRelation::new(name, len, scheme);
    for (lineno, line) in lines.enumerate() {
        if line.trim().is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split(',');
        let row_name = parts
            .next()
            .ok_or_else(|| LoadError::Format(format!("line {}: empty", lineno + 3)))?;
        let values: Result<Vec<f64>, _> = parts.map(str::parse::<f64>).collect();
        let values = values.map_err(|e| LoadError::Format(format!("line {}: {e}", lineno + 3)))?;
        relation
            .insert(row_name, values)
            .map_err(LoadError::Series)?;
    }
    Ok(relation)
}

/// Saves a relation to a file.
///
/// # Errors
/// I/O errors from the filesystem.
pub fn save(relation: &SeriesRelation, path: impl AsRef<Path>) -> io::Result<()> {
    fs::write(path, to_string(relation))
}

/// Loads a relation from a file.
///
/// # Errors
/// [`LoadError`] on I/O or parse failure.
pub fn load(path: impl AsRef<Path>) -> Result<SeriesRelation, LoadError> {
    from_str(&fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_relation() -> SeriesRelation {
        let mut rel = SeriesRelation::new(
            "demo",
            16,
            FeatureScheme::new(2, Representation::Polar, true),
        );
        for i in 0..5 {
            let s: Vec<f64> = (0..16)
                .map(|t| 10.0 + i as f64 * 0.5 + ((t + i) as f64 * 0.7).sin())
                .collect();
            rel.insert(format!("row{i}"), s).unwrap();
        }
        rel
    }

    #[test]
    fn roundtrip_is_exact() {
        let rel = sample_relation();
        let text = to_string(&rel);
        let back = from_str(&text).unwrap();
        assert_eq!(back.name(), rel.name());
        assert_eq!(back.len(), rel.len());
        assert_eq!(back.series_len(), rel.series_len());
        assert_eq!(back.scheme(), rel.scheme());
        for (a, b) in rel.rows().zip(back.rows()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.raw, b.raw); // bit-exact
        }
    }

    #[test]
    fn file_roundtrip() {
        let rel = sample_relation();
        let dir = std::env::temp_dir().join("simq-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rel.txt");
        save(&rel, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.len(), rel.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(matches!(from_str("nope"), Err(LoadError::Format(_))));
    }

    #[test]
    fn rejects_bad_values() {
        let text = "# simq-relation v1\n# name=x len=4 k=1 rep=polar stats=1\nrow,1,2,3,abc\n";
        assert!(matches!(from_str(text), Err(LoadError::Format(_))));
    }

    #[test]
    fn rejects_wrong_length_row() {
        let text = "# simq-relation v1\n# name=x len=4 k=1 rep=polar stats=1\nrow,1,2,3\n";
        assert!(matches!(from_str(text), Err(LoadError::Series(_))));
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let rel = sample_relation();
        let mut text = to_string(&rel);
        text.push_str("\n# trailing comment\n\n");
        let back = from_str(&text).unwrap();
        assert_eq!(back.len(), rel.len());
    }
}
