//! Batched sequential scans: one pass over the relation serving a whole
//! batch of queries.
//!
//! The scan fallbacks of [`crate::scan`] read every stored spectrum once
//! *per query*; a batch of queries against the same relation can share
//! that pass — each row is brought in once and every query's distance is
//! computed against it before moving on (better locality, one iteration's
//! worth of bookkeeping). Every per-row computation is the exact serial
//! code on the same operands, so each query's hits and distances are
//! bitwise identical to its individual [`crate::scan::scan_range`] /
//! [`crate::scan::scan_knn`] run.
//!
//! Work accounting mirrors the batched index traversals:
//! [`MultiScanStats::merged`] counts each row once per shared pass;
//! `per_query[i]` counts what query `i`'s individual scan would have
//! counted.

use crate::relation::SeriesRelation;
use crate::scan::{chunk_bounds, transformed_distance_sq, ScanHit, ScanStats};
use simq_dsp::complex::Complex;
use simq_series::error::SeriesError;
use simq_series::transform::SeriesTransform;

/// One range query of a scan batch.
pub struct MultiScanRangeQuery<'a> {
    /// Transformation applied to the stored spectra.
    pub transform: &'a SeriesTransform,
    /// The comparison spectrum (already transformed when `ON BOTH`).
    pub query_spectrum: &'a [Complex],
    /// Distance threshold.
    pub eps: f64,
}

/// One kNN query of a scan batch.
pub struct MultiScanKnnQuery<'a> {
    /// Transformation applied to the stored spectra.
    pub transform: &'a SeriesTransform,
    /// The comparison spectrum.
    pub query_spectrum: &'a [Complex],
    /// Number of neighbours requested.
    pub k: usize,
}

/// Work counters of one batched scan.
#[derive(Debug, Clone, Default)]
pub struct MultiScanStats {
    /// Rows counted once per shared pass; coefficient comparisons summed
    /// over all queries (each is real work).
    pub merged: ScanStats,
    /// What each query's individual scan would have counted.
    pub per_query: Vec<ScanStats>,
}

impl MultiScanStats {
    fn with_queries(n: usize) -> Self {
        MultiScanStats {
            merged: ScanStats::default(),
            per_query: vec![ScanStats::default(); n],
        }
    }
}

/// Range queries by one shared pass over the frequency-domain relation
/// (the batched sibling of [`crate::scan::scan_range`], early-abandoning
/// at each query's own `eps²`). With `threads > 1` the row range is split
/// into contiguous chunks exactly like
/// [`crate::scan::scan_range_parallel`], so hit order per query is the
/// serial row order either way.
///
/// # Errors
/// Transformation-domain errors from any query in the batch.
pub fn scan_range_multi(
    relation: &SeriesRelation,
    queries: &[MultiScanRangeQuery],
    early_abandon: bool,
    threads: usize,
) -> Result<(Vec<Vec<ScanHit>>, MultiScanStats), SeriesError> {
    let n = relation.series_len();
    let count = n.saturating_sub(1);
    let mut actions = Vec::with_capacity(queries.len());
    for q in queries {
        actions.push(q.transform.action(n, count)?);
    }
    let mut out: Vec<Vec<ScanHit>> = vec![Vec::new(); queries.len()];
    let mut stats = MultiScanStats::with_queries(queries.len());
    if queries.is_empty() {
        return Ok((out, stats));
    }

    let rows: Vec<&crate::relation::SeriesRow> = relation.rows().collect();
    let scan_chunk = |rows: &[&crate::relation::SeriesRow],
                      out: &mut [Vec<ScanHit>],
                      stats: &mut MultiScanStats| {
        for row in rows {
            stats.merged.rows_scanned += 1;
            for (qi, q) in queries.iter().enumerate() {
                let s = &mut stats.per_query[qi];
                s.rows_scanned += 1;
                let limit = early_abandon.then_some(q.eps * q.eps);
                let before = s.coefficients_compared;
                let (d_sq, abandoned) = transformed_distance_sq(
                    &row.features.spectrum,
                    &actions[qi].multipliers,
                    q.query_spectrum,
                    limit,
                    &mut s.coefficients_compared,
                );
                stats.merged.coefficients_compared += s.coefficients_compared - before;
                if abandoned {
                    s.early_abandoned += 1;
                    stats.merged.early_abandoned += 1;
                    continue;
                }
                if d_sq.sqrt() <= q.eps {
                    out[qi].push(ScanHit {
                        id: row.id,
                        distance: d_sq.sqrt(),
                    });
                }
            }
        }
    };

    let bounds = chunk_bounds(rows.len(), threads.max(1));
    if bounds.len() <= 1 {
        scan_chunk(&rows, &mut out, &mut stats);
        return Ok((out, stats));
    }
    type Worker = (Vec<Vec<ScanHit>>, MultiScanStats);
    let workers: Vec<Worker> = std::thread::scope(|scope| {
        let handles: Vec<_> = bounds
            .iter()
            .map(|&(lo, hi)| {
                let rows = &rows[lo..hi];
                let scan_chunk = &scan_chunk;
                scope.spawn(move || {
                    let mut out: Vec<Vec<ScanHit>> = vec![Vec::new(); queries.len()];
                    let mut stats = MultiScanStats::with_queries(queries.len());
                    scan_chunk(rows, &mut out, &mut stats);
                    (out, stats)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("batched scan worker panicked"))
            .collect()
    });
    for (local_out, local) in workers {
        for (acc, hits) in out.iter_mut().zip(local_out) {
            acc.extend(hits);
        }
        merge_stats(&mut stats, &local);
    }
    Ok((out, stats))
}

/// kNN queries by one shared pass (the batched sibling of
/// [`crate::scan::scan_knn`]): full distances for every row against every
/// query, then per-query `(distance, id)` sort and truncation — exactly
/// the serial reference semantics, so results are bitwise identical to
/// individual scans at any thread count.
///
/// # Errors
/// Transformation-domain errors from any query in the batch.
pub fn scan_knn_multi(
    relation: &SeriesRelation,
    queries: &[MultiScanKnnQuery],
    threads: usize,
) -> Result<(Vec<Vec<ScanHit>>, MultiScanStats), SeriesError> {
    let n = relation.series_len();
    let count = n.saturating_sub(1);
    let mut actions = Vec::with_capacity(queries.len());
    for q in queries {
        actions.push(q.transform.action(n, count)?);
    }
    let mut out: Vec<Vec<ScanHit>> = vec![Vec::new(); queries.len()];
    let mut stats = MultiScanStats::with_queries(queries.len());
    if queries.is_empty() {
        return Ok((out, stats));
    }

    let rows: Vec<&crate::relation::SeriesRow> = relation.rows().collect();
    let scan_chunk = |rows: &[&crate::relation::SeriesRow],
                      out: &mut [Vec<ScanHit>],
                      stats: &mut MultiScanStats| {
        for row in rows {
            stats.merged.rows_scanned += 1;
            for (qi, q) in queries.iter().enumerate() {
                let s = &mut stats.per_query[qi];
                s.rows_scanned += 1;
                let before = s.coefficients_compared;
                let (d_sq, _) = transformed_distance_sq(
                    &row.features.spectrum,
                    &actions[qi].multipliers,
                    q.query_spectrum,
                    None,
                    &mut s.coefficients_compared,
                );
                stats.merged.coefficients_compared += s.coefficients_compared - before;
                out[qi].push(ScanHit {
                    id: row.id,
                    distance: d_sq.sqrt(),
                });
            }
        }
    };

    let bounds = chunk_bounds(rows.len(), threads.max(1));
    if bounds.len() <= 1 {
        scan_chunk(&rows, &mut out, &mut stats);
    } else {
        type Worker = (Vec<Vec<ScanHit>>, MultiScanStats);
        let workers: Vec<Worker> = std::thread::scope(|scope| {
            let handles: Vec<_> = bounds
                .iter()
                .map(|&(lo, hi)| {
                    let rows = &rows[lo..hi];
                    let scan_chunk = &scan_chunk;
                    scope.spawn(move || {
                        let mut out: Vec<Vec<ScanHit>> = vec![Vec::new(); queries.len()];
                        let mut stats = MultiScanStats::with_queries(queries.len());
                        scan_chunk(rows, &mut out, &mut stats);
                        (out, stats)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("batched kNN scan worker panicked"))
                .collect()
        });
        for (local_out, local) in workers {
            for (acc, hits) in out.iter_mut().zip(local_out) {
                acc.extend(hits);
            }
            merge_stats(&mut stats, &local);
        }
    }
    for (qi, q) in queries.iter().enumerate() {
        out[qi].sort_by(|a, b| {
            a.distance
                .partial_cmp(&b.distance)
                .expect("finite distances")
                .then(a.id.cmp(&b.id))
        });
        out[qi].truncate(q.k);
    }
    Ok((out, stats))
}

fn merge_stats(acc: &mut MultiScanStats, other: &MultiScanStats) {
    let add = |a: &mut ScanStats, b: &ScanStats| {
        a.rows_scanned += b.rows_scanned;
        a.coefficients_compared += b.coefficients_compared;
        a.early_abandoned += b.early_abandoned;
    };
    add(&mut acc.merged, &other.merged);
    for (a, b) in acc.per_query.iter_mut().zip(&other.per_query) {
        add(a, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::{scan_knn, scan_range};
    use simq_series::features::FeatureScheme;

    fn relation_with(rows: usize) -> SeriesRelation {
        let mut rel = SeriesRelation::new("r", 64, FeatureScheme::paper_default());
        for i in 0..rows {
            let series: Vec<f64> = (0..64)
                .map(|t| {
                    20.0 + (t as f64 * (0.1 + i as f64 * 0.013)).sin() * 4.0
                        + (t as f64 * 0.31).cos() * (i % 5) as f64
                })
                .collect();
            rel.insert(format!("S{i}"), series).unwrap();
        }
        rel
    }

    #[test]
    fn batched_range_scan_matches_individual() {
        let rel = relation_with(80);
        let t_id = SeriesTransform::Identity;
        let t_ma = SeriesTransform::MovingAverage { window: 5 };
        let specs: Vec<(SeriesTransform, Vec<Complex>, f64)> = vec![
            (
                t_id.clone(),
                rel.row(3).unwrap().features.spectrum.clone(),
                2.0,
            ),
            (
                t_ma.clone(),
                rel.row(10).unwrap().features.spectrum.clone(),
                0.7,
            ),
            (
                t_id.clone(),
                rel.row(40).unwrap().features.spectrum.clone(),
                15.0,
            ),
        ];
        let queries: Vec<MultiScanRangeQuery> = specs
            .iter()
            .map(|(t, q, eps)| MultiScanRangeQuery {
                transform: t,
                query_spectrum: q,
                eps: *eps,
            })
            .collect();
        for abandon in [false, true] {
            for threads in [1, 4] {
                let (batch, stats) = scan_range_multi(&rel, &queries, abandon, threads).unwrap();
                for (qi, (t, q, eps)) in specs.iter().enumerate() {
                    let (individual, s) = scan_range(&rel, t, q, *eps, abandon).unwrap();
                    assert_eq!(batch[qi].len(), individual.len(), "q {qi}");
                    for (a, b) in batch[qi].iter().zip(&individual) {
                        assert_eq!(a.id, b.id);
                        assert_eq!(a.distance.to_bits(), b.distance.to_bits());
                    }
                    assert_eq!(stats.per_query[qi], s, "q {qi} threads {threads}");
                }
                // One shared pass: rows counted once, not once per query.
                assert_eq!(stats.merged.rows_scanned, 80);
            }
        }
    }

    #[test]
    fn batched_knn_scan_matches_individual() {
        let rel = relation_with(60);
        let t = SeriesTransform::Identity;
        let specs: Vec<(Vec<Complex>, usize)> = vec![
            (rel.row(0).unwrap().features.spectrum.clone(), 5),
            (rel.row(30).unwrap().features.spectrum.clone(), 1),
            (rel.row(59).unwrap().features.spectrum.clone(), 200),
        ];
        let queries: Vec<MultiScanKnnQuery> = specs
            .iter()
            .map(|(q, k)| MultiScanKnnQuery {
                transform: &t,
                query_spectrum: q,
                k: *k,
            })
            .collect();
        for threads in [1, 3] {
            let (batch, stats) = scan_knn_multi(&rel, &queries, threads).unwrap();
            for (qi, (q, k)) in specs.iter().enumerate() {
                let (individual, _) = scan_knn(&rel, &t, q, *k).unwrap();
                assert_eq!(batch[qi].len(), individual.len(), "q {qi}");
                for (a, b) in batch[qi].iter().zip(&individual) {
                    assert_eq!(a.id, b.id, "q {qi} threads {threads}");
                    assert_eq!(a.distance.to_bits(), b.distance.to_bits());
                }
            }
            assert_eq!(stats.merged.rows_scanned, 60);
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let rel = relation_with(5);
        let (out, stats) = scan_range_multi(&rel, &[], true, 4).unwrap();
        assert!(out.is_empty());
        assert_eq!(stats.merged.rows_scanned, 0);
    }
}
