//! The durable directory store: per-shard checkpoints plus WAL tails.
//!
//! A durable database lives in one directory:
//!
//! ```text
//! dir/
//!   MANIFEST                  paged, checksummed catalog of the directory
//!   r<id>.s<j>.e<E>.snap      shard j's checkpoint, written at epoch E
//!   r<id>.s<j>.e<E>.wal       shard j's WAL tail since that checkpoint
//! ```
//!
//! Every shard checkpoint is an ordinary single-entry snapshot
//! ([`crate::snapshot`]) of that shard's store and tree; an unsharded
//! relation is the one-shard special case. `<id>` is a stable per-relation
//! file id assigned at first checkpoint (names stay valid when relations
//! are added or dropped), and `<E>` is the epoch the shard's checkpoint was
//! written at.
//!
//! ## Checkpoint protocol
//!
//! 1. Write every **dirty** shard's state to a *new* file name (next
//!    epoch). Clean shards keep their existing files — this is the
//!    only-rewrite-changed-shards property.
//! 2. Atomically rewrite `MANIFEST` to reference the new files.
//! 3. Delete files the new manifest no longer references (superseded
//!    checkpoints and the WAL tails they absorbed).
//!
//! A crash at any point leaves a openable directory: before step 2 the old
//! manifest still references the complete old file set (new-epoch files are
//! orphans, cleaned on next open); after step 2 the new set is committed
//! and stale files are at worst re-deleted. A crash *between* a shard's
//! checkpoint commit and its WAL deletion makes replay see records the
//! snapshot already contains — they deterministically collide on their row
//! id and are skipped (and counted) rather than double-applied.
//!
//! ## Replay invariants
//!
//! On open, each shard's WAL is replayed onto its checkpoint under the
//! longest-valid-prefix rule of [`crate::wal`]; torn tails are truncated on
//! disk so the next append continues from a clean boundary. Replayed
//! inserts re-extract features from the logged raw series — bit-identical
//! to the original extraction, since extraction is deterministic.

use crate::group::WriteGroup;
use crate::pages::{self, PageError};
use crate::relation::SeriesRelation;
use crate::shard::{ShardLayout, ShardedRelation};
use crate::snapshot::{self, SnapshotEntry, SnapshotError, SnapshotRelation};
use crate::wal::{self, WalRecord};
use simq_index::serial::{ByteReader, ByteWriter};
use simq_index::RTree;
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const MANIFEST_NAME: &str = "MANIFEST";
const MANIFEST_MAGIC: &[u8; 8] = b"SIMQWMAN";
const MANIFEST_VERSION: u32 = 1;

/// Errors from the durable store.
#[derive(Debug)]
pub enum DurableError {
    /// I/O failure.
    Io(io::Error),
    /// The manifest failed page verification.
    Page(PageError),
    /// A shard checkpoint failed to load.
    Snapshot(SnapshotError),
    /// The directory's contents are structurally inconsistent.
    Format(String),
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Io(e) => write!(f, "i/o error: {e}"),
            DurableError::Page(e) => write!(f, "manifest: {e}"),
            DurableError::Snapshot(e) => write!(f, "shard checkpoint: {e}"),
            DurableError::Format(m) => write!(f, "durable store error: {m}"),
        }
    }
}

impl std::error::Error for DurableError {}

impl From<io::Error> for DurableError {
    fn from(e: io::Error) -> Self {
        DurableError::Io(e)
    }
}

impl From<PageError> for DurableError {
    fn from(e: PageError) -> Self {
        DurableError::Page(e)
    }
}

impl From<SnapshotError> for DurableError {
    fn from(e: SnapshotError) -> Self {
        DurableError::Snapshot(e)
    }
}

/// One relation's row in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Stable file id (survives relation additions and drops).
    pub file_id: u64,
    /// Relation name.
    pub name: String,
    /// Whether the relation is stored in its sharded form.
    pub sharded: bool,
    /// Per shard, the epoch its current checkpoint was written at.
    pub shard_epochs: Vec<u64>,
}

/// The decoded manifest: the authoritative list of files in the directory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Epoch of the most recent checkpoint commit.
    pub epoch: u64,
    /// Next file id to assign.
    pub next_file_id: u64,
    /// One entry per relation, in catalog order.
    pub entries: Vec<ManifestEntry>,
}

fn manifest_to_bytes(m: &Manifest) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_bytes(MANIFEST_MAGIC);
    w.put_u32(MANIFEST_VERSION);
    w.put_u64(m.epoch);
    w.put_u64(m.next_file_id);
    w.put_u32(m.entries.len() as u32);
    for e in &m.entries {
        w.put_u64(e.file_id);
        w.put_str(&e.name);
        w.put_u8(u8::from(e.sharded));
        w.put_u32(e.shard_epochs.len() as u32);
        for epoch in &e.shard_epochs {
            w.put_u64(*epoch);
        }
    }
    pages::to_file_bytes(&w.into_bytes())
}

fn manifest_from_bytes(file: &[u8]) -> Result<Manifest, DurableError> {
    let stream = pages::from_file_bytes(file)?;
    let mut r = ByteReader::new(&stream);
    let bad = |m: &str| DurableError::Format(m.to_string());
    let fmt = |e: simq_index::serial::SerialError| DurableError::Format(format!("manifest: {e}"));
    if r.take(8).map_err(fmt)? != MANIFEST_MAGIC {
        return Err(bad("bad manifest magic"));
    }
    let version = r.get_u32().map_err(fmt)?;
    if version != MANIFEST_VERSION {
        return Err(DurableError::Format(format!(
            "unsupported manifest version {version} (expected {MANIFEST_VERSION})"
        )));
    }
    let epoch = r.get_u64().map_err(fmt)?;
    let next_file_id = r.get_u64().map_err(fmt)?;
    let count = r.get_u32().map_err(fmt)? as usize;
    r.check_count(count, 8 + 4 + 1 + 4).map_err(fmt)?;
    let mut entries = Vec::with_capacity(count);
    let mut names = BTreeSet::new();
    let mut ids = BTreeSet::new();
    for _ in 0..count {
        let file_id = r.get_u64().map_err(fmt)?;
        let name = r.get_str().map_err(fmt)?;
        let sharded = match r.get_u8().map_err(fmt)? {
            0 => false,
            1 => true,
            tag => return Err(DurableError::Format(format!("unknown sharded flag {tag}"))),
        };
        let shards = r.get_u32().map_err(fmt)? as usize;
        if shards == 0 || (!sharded && shards != 1) {
            return Err(bad("inconsistent shard count"));
        }
        r.check_count(shards, 8).map_err(fmt)?;
        let mut shard_epochs = Vec::with_capacity(shards);
        for _ in 0..shards {
            let e = r.get_u64().map_err(fmt)?;
            if e > epoch {
                return Err(bad("shard epoch beyond manifest epoch"));
            }
            shard_epochs.push(e);
        }
        if file_id >= next_file_id || !ids.insert(file_id) {
            return Err(bad("invalid or duplicate file id"));
        }
        if !names.insert(name.clone()) {
            return Err(DurableError::Format(format!(
                "duplicate relation name {name:?}"
            )));
        }
        entries.push(ManifestEntry {
            file_id,
            name,
            sharded,
            shard_epochs,
        });
    }
    if r.remaining() != 0 {
        return Err(bad("trailing bytes after manifest"));
    }
    Ok(Manifest {
        epoch,
        next_file_id,
        entries,
    })
}

/// The injectable WAL write target for the crash-fuzz harness.
///
/// Instead of the filesystem, appends go to an in-memory byte buffer per
/// log file, with a global byte budget that simulates the process dying at
/// a seeded offset of the WAL write stream: the append that crosses the
/// budget writes only the bytes that "made it to disk" and fails — the
/// insert is **not acknowledged** — and every later append fails without
/// writing. [`FailingStorage::materialize`] then writes the surviving
/// bytes to the real paths, reproducing exactly the directory state a
/// crash at that byte would have left.
#[derive(Debug)]
pub struct FailingStorage {
    files: Mutex<Vec<(PathBuf, Vec<u8>)>>,
    /// Bytes that may still be written before the simulated crash.
    remaining: AtomicU64,
    dead: AtomicU64,
}

impl FailingStorage {
    /// A storage that kills the process after `kill_after` appended bytes.
    pub fn new(kill_after: u64) -> Arc<Self> {
        Arc::new(FailingStorage {
            files: Mutex::new(Vec::new()),
            remaining: AtomicU64::new(kill_after),
            dead: AtomicU64::new(0),
        })
    }

    /// Appends `bytes` to the in-memory log at `path`, honouring the kill
    /// budget. Fails (torn or zero-length write) once the budget is spent.
    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut files = self.files.lock().expect("sink lock");
        if self.dead.load(Ordering::SeqCst) != 0 {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "simulated crash: storage is gone",
            ));
        }
        let remaining = self.remaining.load(Ordering::SeqCst);
        let write = (bytes.len() as u64).min(remaining) as usize;
        let buf = match files.iter_mut().find(|(p, _)| p == path) {
            Some((_, buf)) => buf,
            None => {
                files.push((path.to_path_buf(), Vec::new()));
                &mut files.last_mut().expect("just pushed").1
            }
        };
        buf.extend_from_slice(&bytes[..write]);
        self.remaining
            .store(remaining - write as u64, Ordering::SeqCst);
        if write < bytes.len() {
            self.dead.store(1, Ordering::SeqCst);
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "simulated crash mid-append",
            ));
        }
        Ok(())
    }

    /// True once the kill budget has been hit.
    pub fn crashed(&self) -> bool {
        self.dead.load(Ordering::SeqCst) != 0
    }

    /// Writes every surviving in-memory log to its real path — the state
    /// the crash left on disk, ready for [`DurableDir::open`].
    ///
    /// # Errors
    /// I/O errors from the filesystem.
    pub fn materialize(&self) -> io::Result<()> {
        let files = self.files.lock().expect("sink lock");
        let mut dirs: BTreeSet<PathBuf> = BTreeSet::new();
        for (path, bytes) in files.iter() {
            let mut f = fs::File::create(path)?;
            f.write_all(bytes)?;
            f.sync_data()?;
            if let Some(parent) = path.parent() {
                dirs.insert(parent.to_path_buf());
            }
        }
        // The new files' directory entries must be durable too — same rule
        // as the real WAL path: a created file without a directory fsync
        // can vanish wholesale on power loss.
        for dir in dirs {
            pages::fsync_dir(&dir)?;
        }
        Ok(())
    }
}

/// What one [`DurableDir::checkpoint`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointReport {
    /// Epoch the checkpoint committed as.
    pub epoch: u64,
    /// Shard checkpoints rewritten (they were dirty).
    pub shards_written: u64,
    /// Shard checkpoints left untouched (clean — the dirty-tracking win).
    pub shards_clean: u64,
    /// Superseded files removed after the manifest commit.
    pub files_removed: u64,
}

/// What replay did while opening a directory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// WAL records applied on top of the checkpoints.
    pub records_applied: u64,
    /// Records skipped because their row id was already in the checkpoint
    /// (a crash landed between a shard's checkpoint commit and its WAL
    /// truncation).
    pub records_already_applied: u64,
    /// Whole records lost to torn or corrupted tails (best-effort count).
    pub records_dropped: u64,
    /// Bytes truncated off torn or corrupted tails.
    pub bytes_dropped: u64,
    /// WAL files that needed on-disk repair (tail truncation).
    pub wal_files_repaired: u64,
}

/// A durable database directory: the manifest plus the file layout rules.
///
/// This type owns the *mechanics* — manifest round-trips, checkpoint
/// commits, WAL routing, replay; the catalog semantics (which relations
/// exist, what is dirty) live with the `Database` in `simq-query`.
#[derive(Debug, Clone)]
pub struct DurableDir {
    dir: PathBuf,
    manifest: Manifest,
    /// Test-injectable WAL write target ([`FailingStorage`]); `None`
    /// appends to the real files.
    sink: Option<Arc<FailingStorage>>,
    /// One lazily created [`WriteGroup`] per live WAL path, shared by
    /// every clone of this handle so concurrent submitters coalesce.
    /// Cleared at checkpoint (the live paths change epoch).
    groups: Arc<Mutex<BTreeMap<PathBuf, Arc<WriteGroup>>>>,
}

/// One relation's current state, as the checkpoint writer needs it: the
/// per-shard sources plus per-shard dirty flags.
pub struct CheckpointSource<'a> {
    /// Relation name.
    pub name: &'a str,
    /// Whether the relation is in its sharded form.
    pub sharded: bool,
    /// Per shard: the shard's store, its optional tree, and whether it
    /// changed since the last checkpoint.
    pub shards: Vec<(&'a SeriesRelation, Option<&'a RTree>, bool)>,
}

impl DurableDir {
    /// Creates (or re-initializes the handle for) a durable directory.
    /// The directory is created if absent; an existing manifest is **not**
    /// read — use [`DurableDir::open`] for that. The caller follows up
    /// with a full checkpoint to give the manifest content.
    ///
    /// # Errors
    /// I/O errors from the filesystem.
    pub fn create(dir: impl Into<PathBuf>) -> Result<Self, DurableError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let store = DurableDir {
            dir,
            manifest: Manifest::default(),
            sink: None,
            groups: Arc::new(Mutex::new(BTreeMap::new())),
        };
        pages::write_atomic(&store.manifest_path(), &manifest_to_bytes(&store.manifest))?;
        Ok(store)
    }

    /// Opens an existing durable directory: reads the manifest, loads
    /// every shard checkpoint, repairs and replays every WAL tail, and
    /// cleans up orphan files from an interrupted checkpoint.
    ///
    /// # Errors
    /// [`DurableError`] when the manifest is missing or invalid, or a
    /// referenced checkpoint is missing or corrupt. WAL corruption is
    /// *not* an error — torn tails are truncated and reported.
    pub fn open(
        dir: impl Into<PathBuf>,
    ) -> Result<(Self, Vec<SnapshotEntry>, ReplayReport), DurableError> {
        let dir = dir.into();
        let manifest_bytes = fs::read(dir.join(MANIFEST_NAME)).map_err(|e| {
            if e.kind() == io::ErrorKind::NotFound {
                DurableError::Format(format!("no durable database at {}", dir.display()))
            } else {
                DurableError::Io(e)
            }
        })?;
        let manifest = manifest_from_bytes(&manifest_bytes)?;
        let store = DurableDir {
            dir,
            manifest,
            sink: None,
            groups: Arc::new(Mutex::new(BTreeMap::new())),
        };

        let mut entries = Vec::with_capacity(store.manifest.entries.len());
        let mut report = ReplayReport::default();
        {
            let replay_span = simq_obs::span::span("wal.replay");
            for entry in &store.manifest.entries {
                entries.push(store.load_entry(entry, &mut report)?);
            }
            replay_span.note("applied", report.records_applied);
            replay_span.note("dropped", report.records_dropped);
        }
        let m = simq_obs::metrics::registry();
        m.wal_replay_applied
            .fetch_add(report.records_applied, Ordering::Relaxed);
        m.wal_replay_dropped
            .fetch_add(report.records_dropped, Ordering::Relaxed);
        store.remove_unreferenced().ok(); // best-effort orphan cleanup
        Ok((store, entries, report))
    }

    /// Routes WAL appends through `sink` instead of the filesystem (the
    /// crash-fuzz hook). Checkpoints still write real files. Existing
    /// write groups are dropped — their flush closures captured the old
    /// target.
    pub fn set_sink(&mut self, sink: Option<Arc<FailingStorage>>) {
        self.sink = sink;
        self.groups.lock().expect("write-group map lock").clear();
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The current manifest (read-only view).
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir.join(MANIFEST_NAME)
    }

    fn snap_path(&self, file_id: u64, shard: usize, epoch: u64) -> PathBuf {
        self.dir.join(format!("r{file_id}.s{shard}.e{epoch}.snap"))
    }

    fn wal_path(&self, file_id: u64, shard: usize, epoch: u64) -> PathBuf {
        self.dir.join(format!("r{file_id}.s{shard}.e{epoch}.wal"))
    }

    /// The WAL path an insert into `name`'s shard `shard` appends to.
    ///
    /// # Errors
    /// [`DurableError::Format`] when the relation or shard is not in the
    /// manifest (the caller must checkpoint new relations first).
    pub fn wal_path_for(&self, name: &str, shard: usize) -> Result<PathBuf, DurableError> {
        let entry = self
            .manifest
            .entries
            .iter()
            .find(|e| e.name == name)
            .ok_or_else(|| {
                DurableError::Format(format!("relation {name:?} has no checkpoint yet"))
            })?;
        let epoch = *entry.shard_epochs.get(shard).ok_or_else(|| {
            DurableError::Format(format!("relation {name:?} has no shard {shard}"))
        })?;
        Ok(self.wal_path(entry.file_id, shard, epoch))
    }

    /// Appends one insert record to `name`'s shard `shard` WAL. Returns
    /// only after the bytes are on the write target — a `Ok` here *is* the
    /// acknowledged-write guarantee.
    ///
    /// # Errors
    /// Routing errors ([`DurableError::Format`]) and write failures; on a
    /// write failure the log may hold a torn tail, which replay truncates.
    pub fn append_insert(
        &self,
        name: &str,
        shard: usize,
        record: &WalRecord,
    ) -> Result<(), DurableError> {
        let path = self.wal_path_for(name, shard)?;
        match &self.sink {
            Some(sink) => sink.append(&path, &wal::encode_record(record))?,
            None => {
                wal::append(&path, record)?;
            }
        }
        Ok(())
    }

    /// Appends a whole batch of insert records to `name`'s shard `shard`
    /// WAL with **one** write and **one** sync — the group-commit batch
    /// path. `Ok` means the entire group is durable; after a crash the log
    /// holds a prefix of the group in append order, never an interleaving.
    /// Returns the records made durable (the group size).
    ///
    /// # Errors
    /// Routing errors ([`DurableError::Format`]) and write failures; on a
    /// write failure the log may hold a torn tail, which replay truncates.
    pub fn append_insert_group(
        &self,
        name: &str,
        shard: usize,
        records: &[WalRecord],
    ) -> Result<u64, DurableError> {
        if records.is_empty() {
            return Ok(0);
        }
        let path = self.wal_path_for(name, shard)?;
        match &self.sink {
            Some(sink) => {
                let bytes: Vec<u8> = records.iter().flat_map(wal::encode_record).collect();
                sink.append(&path, &bytes)?;
                let m = simq_obs::metrics::registry();
                m.wal_appends
                    .fetch_add(records.len() as u64, Ordering::Relaxed);
                m.wal_syncs.fetch_add(1, Ordering::Relaxed);
                m.wal_group_commits.fetch_add(1, Ordering::Relaxed);
            }
            None => {
                wal::append_group(&path, records)?;
            }
        }
        Ok(records.len() as u64)
    }

    /// Appends one insert record through the shard's [`WriteGroup`]:
    /// concurrent submitters against the same shard coalesce into shared
    /// syncs, and this returns — acknowledging the insert — only after the
    /// flush covering the record has synced. Returns the realized commit
    /// (group size ≥ 1).
    ///
    /// # Errors
    /// Routing errors ([`DurableError::Format`]) and the I/O error of the
    /// failed flush that covered this record.
    pub fn append_insert_grouped(
        &self,
        name: &str,
        shard: usize,
        record: &WalRecord,
    ) -> Result<crate::group::GroupCommit, DurableError> {
        let path = self.wal_path_for(name, shard)?;
        let group = {
            let mut groups = self.groups.lock().expect("write-group map lock");
            Arc::clone(groups.entry(path.clone()).or_insert_with(|| {
                let sink = self.sink.clone();
                Arc::new(WriteGroup::new(move |bytes: &[u8]| match &sink {
                    Some(sink) => sink.append(&path, bytes),
                    None => wal::append_raw(&path, bytes),
                }))
            }))
        };
        Ok(group.submit(std::slice::from_ref(record))?)
    }

    /// Commits a checkpoint: writes every dirty shard under the next
    /// epoch, atomically rewrites the manifest, then deletes superseded
    /// files (old checkpoints and the WAL tails they absorbed).
    ///
    /// `sources` is the complete catalog in its desired order; relations
    /// absent from it are dropped from the manifest and their files
    /// removed. New relations and shape changes (shard count, sharded
    /// flag) are detected against the old manifest and treated as fully
    /// dirty.
    ///
    /// # Errors
    /// I/O errors. On error before the manifest commit, the directory
    /// still opens to its previous state.
    pub fn checkpoint(
        &mut self,
        sources: &[CheckpointSource<'_>],
    ) -> Result<CheckpointReport, DurableError> {
        let epoch = self.manifest.epoch + 1;
        let mut next_file_id = self.manifest.next_file_id;
        let mut report = CheckpointReport {
            epoch,
            ..CheckpointReport::default()
        };
        let m = simq_obs::metrics::registry();
        let write_span = simq_obs::span::span("checkpoint.write");
        let mut bytes_written: u64 = 0;
        let mut entries = Vec::with_capacity(sources.len());
        for src in sources {
            let old = self.manifest.entries.iter().find(|e| e.name == src.name);
            let shape_changed = old.is_none_or(|e| {
                e.sharded != src.sharded || e.shard_epochs.len() != src.shards.len()
            });
            let file_id = match old {
                Some(e) if !shape_changed => e.file_id,
                // A shape change moves to a fresh file id so its new files
                // can never collide with the old layout's.
                _ => {
                    let id = next_file_id;
                    next_file_id += 1;
                    id
                }
            };
            let mut shard_epochs = Vec::with_capacity(src.shards.len());
            for (shard, (relation, index, dirty)) in src.shards.iter().enumerate() {
                if *dirty || shape_changed {
                    let bytes = snapshot::to_bytes(&[(relation, *index)]);
                    pages::write_atomic(&self.snap_path(file_id, shard, epoch), &bytes)?;
                    bytes_written += bytes.len() as u64;
                    shard_epochs.push(epoch);
                    report.shards_written += 1;
                } else {
                    shard_epochs
                        .push(old.expect("clean shard implies an old entry").shard_epochs[shard]);
                    report.shards_clean += 1;
                }
            }
            entries.push(ManifestEntry {
                file_id,
                name: src.name.to_string(),
                sharded: src.sharded,
                shard_epochs,
            });
        }
        write_span.note("shards", report.shards_written);
        write_span.note("bytes", bytes_written);
        drop(write_span);
        let manifest = Manifest {
            epoch,
            next_file_id,
            entries,
        };
        {
            let _commit_span = simq_obs::span::span("checkpoint.commit");
            // `write_atomic` fsyncs the manifest's parent directory after
            // the rename: only then is the new epoch a *durable* commit
            // point, and only then may step 3 delete the old files.
            pages::write_atomic(&self.manifest_path(), &manifest_to_bytes(&manifest))?;
            self.manifest = manifest;
            // Live WAL paths moved to the new epoch; write groups pinned
            // to the old paths must not receive further submissions.
            self.groups.lock().expect("write-group map lock").clear();
        }
        {
            let clean_span = simq_obs::span::span("checkpoint.clean");
            report.files_removed = self.remove_unreferenced()?;
            clean_span.note("removed", report.files_removed);
        }
        m.checkpoint_count.fetch_add(1, Ordering::Relaxed);
        m.checkpoint_shards_written
            .fetch_add(report.shards_written, Ordering::Relaxed);
        m.checkpoint_bytes
            .fetch_add(bytes_written, Ordering::Relaxed);
        Ok(report)
    }

    /// Deletes every `r*.s*.e*.snap|wal` file the manifest does not
    /// reference. Returns how many were removed.
    fn remove_unreferenced(&self) -> Result<u64, DurableError> {
        let mut keep: BTreeSet<PathBuf> = BTreeSet::new();
        for e in &self.manifest.entries {
            for (shard, epoch) in e.shard_epochs.iter().enumerate() {
                keep.insert(self.snap_path(e.file_id, shard, *epoch));
                keep.insert(self.wal_path(e.file_id, shard, *epoch));
            }
        }
        let mut removed = 0;
        for dirent in fs::read_dir(&self.dir)? {
            let path = dirent?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let ours = name.starts_with('r')
                && (name.ends_with(".snap") || name.ends_with(".wal"))
                && name.matches('.').count() == 3;
            if ours && !keep.contains(&path) {
                fs::remove_file(&path)?;
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// Loads one manifest entry: shard checkpoints + WAL replay.
    fn load_entry(
        &self,
        entry: &ManifestEntry,
        report: &mut ReplayReport,
    ) -> Result<SnapshotEntry, DurableError> {
        let shard_count = entry.shard_epochs.len();
        let mut shards: Vec<(SeriesRelation, Option<RTree>)> = Vec::with_capacity(shard_count);
        for (shard, epoch) in entry.shard_epochs.iter().enumerate() {
            let path = self.snap_path(entry.file_id, shard, *epoch);
            let mut loaded = snapshot::load(&path).map_err(|e| match e {
                SnapshotError::Io(io) if io.kind() == io::ErrorKind::NotFound => {
                    DurableError::Format(format!(
                        "checkpoint {} referenced by the manifest is missing",
                        path.display()
                    ))
                }
                other => DurableError::Snapshot(other),
            })?;
            if loaded.len() != 1 {
                return Err(DurableError::Format(format!(
                    "checkpoint {} holds {} catalog entries (expected 1)",
                    path.display(),
                    loaded.len()
                )));
            }
            let Some(SnapshotEntry::Single(s)) = loaded.pop() else {
                return Err(DurableError::Format(format!(
                    "checkpoint {} is not a single-shard image",
                    path.display()
                )));
            };
            if s.relation.name() != entry.name {
                return Err(DurableError::Format(format!(
                    "checkpoint {} stores relation {:?}, manifest says {:?}",
                    path.display(),
                    s.relation.name(),
                    entry.name
                )));
            }
            let mut relation = s.relation;
            let mut index = s.index;
            self.replay_wal_into(
                entry,
                shard,
                *epoch,
                shard_count,
                &mut relation,
                index.as_mut(),
                report,
            )?;
            shards.push((relation, index));
        }

        if !entry.sharded {
            let (relation, index) = shards.pop().expect("manifest guarantees one shard");
            return Ok(SnapshotEntry::Single(SnapshotRelation { relation, index }));
        }
        let layout = ShardLayout::Hash {
            shards: shard_count,
        };
        let mut stores = Vec::with_capacity(shard_count);
        let mut indexes = Vec::with_capacity(shard_count);
        for (shard, (store, index)) in shards.into_iter().enumerate() {
            if let Some(row) = store.rows().find(|r| layout.shard_of(r.id) != shard) {
                return Err(DurableError::Format(format!(
                    "relation {:?}: row id {} stored in shard {shard} but routes elsewhere",
                    entry.name, row.id
                )));
            }
            stores.push(store);
            indexes.push(index.ok_or_else(|| {
                DurableError::Format(format!(
                    "relation {:?}: sharded checkpoint {shard} has no tree",
                    entry.name
                ))
            })?);
        }
        let relation = ShardedRelation::from_shard_stores(entry.name.clone(), layout, stores)
            .map_err(DurableError::Format)?;
        Ok(SnapshotEntry::Sharded { relation, indexes })
    }

    /// Replays (and repairs) one shard's WAL tail into its loaded store.
    #[allow(clippy::too_many_arguments)]
    fn replay_wal_into(
        &self,
        entry: &ManifestEntry,
        shard: usize,
        epoch: u64,
        shard_count: usize,
        relation: &mut SeriesRelation,
        mut index: Option<&mut RTree>,
        report: &mut ReplayReport,
    ) -> Result<(), DurableError> {
        let path = self.wal_path(entry.file_id, shard, epoch);
        let replayed = wal::load(&path)?;
        if replayed.dropped_bytes > 0 {
            wal::truncate_to(&path, replayed.valid_len)?;
            report.wal_files_repaired += 1;
            report.bytes_dropped += replayed.dropped_bytes as u64;
            report.records_dropped += replayed.dropped_records as u64;
        }
        let layout = ShardLayout::Hash {
            shards: shard_count,
        };
        for rec in replayed.records {
            if entry.sharded && layout.shard_of(rec.id) != shard {
                return Err(DurableError::Format(format!(
                    "relation {:?}: WAL record id {} in shard {shard}'s log routes elsewhere",
                    entry.name, rec.id
                )));
            }
            if relation.row(rec.id).is_some() {
                // The checkpoint absorbed this record before the crash
                // could truncate the log; replay is idempotent.
                report.records_already_applied += 1;
                continue;
            }
            relation
                .insert_with_id(rec.id, rec.name, rec.series)
                .map_err(|e| {
                    DurableError::Format(format!(
                        "relation {:?}: WAL record id {} fails to apply: {e}",
                        entry.name, rec.id
                    ))
                })?;
            if let Some(tree) = index.as_deref_mut() {
                let point = &relation.row(rec.id).expect("just inserted").features.point;
                tree.insert_point(point, rec.id);
            }
            report.records_applied += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simq_index::RTreeConfig;
    use simq_series::features::FeatureScheme;

    fn sample_relation(name: &str, rows: usize) -> SeriesRelation {
        let mut rel = SeriesRelation::new(name, 32, FeatureScheme::paper_default());
        for i in 0..rows {
            let series: Vec<f64> = (0..32)
                .map(|t| 20.0 + i as f64 * 0.7 + ((t + i) as f64 * 0.37).sin() * 3.0)
                .collect();
            rel.insert(format!("D{i}"), series).unwrap();
        }
        rel
    }

    fn tmp(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("simq-durable-unit-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn checkpoint_open_roundtrip_single() {
        let dir = tmp("single");
        let rel = sample_relation("r", 20);
        let tree = rel.build_index(RTreeConfig::default());
        let mut store = DurableDir::create(&dir).unwrap();
        let report = store
            .checkpoint(&[CheckpointSource {
                name: "r",
                sharded: false,
                shards: vec![(&rel, Some(&tree), true)],
            }])
            .unwrap();
        assert_eq!(report.shards_written, 1);

        let (_, entries, replay) = DurableDir::open(&dir).unwrap();
        assert_eq!(replay, ReplayReport::default());
        assert_eq!(entries.len(), 1);
        let single = entries[0].single().expect("single entry");
        assert_eq!(single.relation.len(), 20);
        assert_eq!(
            simq_index::serial::to_bytes(single.index.as_ref().unwrap()),
            simq_index::serial::to_bytes(&tree)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_records_replay_on_open() {
        let dir = tmp("replay");
        let rel = sample_relation("r", 5);
        let tree = rel.build_index(RTreeConfig::default());
        let mut store = DurableDir::create(&dir).unwrap();
        store
            .checkpoint(&[CheckpointSource {
                name: "r",
                sharded: false,
                shards: vec![(&rel, Some(&tree), true)],
            }])
            .unwrap();
        let extra = sample_relation("x", 8);
        for row in extra.rows().skip(5) {
            store
                .append_insert(
                    "r",
                    0,
                    &WalRecord {
                        id: row.id,
                        name: row.name.clone(),
                        series: row.raw.clone(),
                    },
                )
                .unwrap();
        }
        let (_, entries, replay) = DurableDir::open(&dir).unwrap();
        assert_eq!(replay.records_applied, 3);
        assert_eq!(replay.records_dropped, 0);
        let single = entries[0].single().unwrap();
        assert_eq!(single.relation.len(), 8);
        assert_eq!(single.index.as_ref().unwrap().len(), 8);
        assert_eq!(single.relation.row(6).unwrap().name, "D6");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn clean_shards_keep_their_files() {
        let dir = tmp("clean");
        let rel = sample_relation("r", 12);
        let sharded = ShardedRelation::from_single(rel, 3);
        let trees = sharded.build_indexes(RTreeConfig::default());
        let src = |dirty: [bool; 3]| CheckpointSource {
            name: "r",
            sharded: true,
            shards: sharded
                .shards()
                .iter()
                .zip(&trees)
                .zip(dirty)
                .map(|((s, t), d)| (s, Some(t), d))
                .collect(),
        };
        let mut store = DurableDir::create(&dir).unwrap();
        store.checkpoint(&[src([true, true, true])]).unwrap();
        let before: Vec<u64> = store.manifest().entries[0].shard_epochs.clone();
        let report = store.checkpoint(&[src([false, true, false])]).unwrap();
        assert_eq!(report.shards_written, 1);
        assert_eq!(report.shards_clean, 2);
        let after = &store.manifest().entries[0].shard_epochs;
        assert_eq!(after[0], before[0]);
        assert_ne!(after[1], before[1]);
        assert_eq!(after[2], before[2]);
        // Reopen still sees all rows.
        let (_, entries, _) = DurableDir::open(&dir).unwrap();
        let SnapshotEntry::Sharded { relation, .. } = &entries[0] else {
            panic!("sharded entry");
        };
        assert_eq!(relation.len(), 12);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn interrupted_checkpoint_leaves_old_state_openable() {
        let dir = tmp("interrupt");
        let rel = sample_relation("r", 6);
        let tree = rel.build_index(RTreeConfig::default());
        let mut store = DurableDir::create(&dir).unwrap();
        store
            .checkpoint(&[CheckpointSource {
                name: "r",
                sharded: false,
                shards: vec![(&rel, Some(&tree), true)],
            }])
            .unwrap();
        // Simulate a crash mid-checkpoint: a new-epoch snap file exists
        // but the manifest was never rewritten.
        let bigger = sample_relation("r", 9);
        let bytes = snapshot::to_bytes(&[(&bigger, None)]);
        let orphan = store.snap_path(store.manifest().entries[0].file_id, 0, 99);
        std::fs::write(&orphan, &bytes).unwrap();
        let (_, entries, _) = DurableDir::open(&dir).unwrap();
        assert_eq!(entries[0].single().unwrap().relation.len(), 6);
        assert!(!orphan.exists(), "orphan cleaned on open");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failing_storage_tears_exactly_at_budget() {
        let rec = WalRecord {
            id: 7,
            name: "n".into(),
            series: vec![1.0, 2.0, 3.0],
        };
        let bytes = wal::encode_record(&rec);
        let sink = FailingStorage::new(bytes.len() as u64 + 5);
        let path = PathBuf::from("/x/y.wal");
        sink.append(&path, &bytes).unwrap();
        assert!(!sink.crashed());
        assert!(sink.append(&path, &bytes).is_err());
        assert!(sink.crashed());
        assert!(sink.append(&path, &bytes).is_err());
        let files = sink.files.lock().unwrap();
        assert_eq!(files[0].1.len(), bytes.len() + 5);
        let replayed = wal::replay(&files[0].1);
        assert_eq!(replayed.records.len(), 1);
        assert_eq!(replayed.records[0], rec);
        assert_eq!(replayed.dropped_bytes, 5);
    }
}
