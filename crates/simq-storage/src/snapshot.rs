//! Versioned binary snapshots of whole databases.
//!
//! A snapshot holds a catalog of named relations, and per relation
//! everything the in-memory form stores: the feature scheme, every row with
//! its id, name, raw series, statistics, index point and precomputed
//! normal-form spectrum, plus (when present) the complete R*-tree structure
//! via [`simq_index::serial`]. Since format version 2 a catalog entry may
//! also be a **sharded** relation ([`crate::shard::ShardedRelation`]): the
//! rows are stored flattened shard-major together with the shard layout
//! and one serialized R*-tree per shard, so `\save`/`\open` round-trip
//! sharded databases without re-partitioning work, feature extraction or
//! index bulk-loading. Version-1 snapshots (unsharded only) still load.
//!
//! On disk the catalog is one logical byte stream (little-endian, exact
//! `f64` bit patterns) wrapped into the checksummed fixed-size pages of
//! [`crate::pages`]. Decoding is defensive end-to-end: any flipped byte is
//! caught by a page checksum, and a structurally inconsistent catalog
//! (wrong spectrum lengths, duplicate row ids, an index whose space or
//! items disagree with its relation or shard) produces a
//! [`SnapshotError`], never a panic.
//!
//! The v2 text format of [`crate::persist`] remains the human-readable
//! import/export path; snapshots are the cold-start path.

use crate::pages::{self, PageError};
use crate::relation::{SeriesRelation, SeriesRow};
use crate::shard::{ShardLayout, ShardedRelation};
use simq_dsp::complex::Complex;
use simq_index::serial::{self, ByteReader, ByteWriter, SerialError};
use simq_index::RTree;
use simq_series::features::{FeatureScheme, Representation, SeriesFeatures};
use std::collections::HashSet;
use std::fs;
use std::io;
use std::path::Path;

const MAGIC: &[u8; 8] = b"SIMQSNAP";
/// Snapshot catalog version written by the encoders. Version 1 (no
/// sharded entries) is still accepted by the decoder.
const VERSION: u32 = 2;

/// Errors from reading a snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// I/O failure.
    Io(io::Error),
    /// The page layer rejected the file.
    Page(PageError),
    /// The catalog stream is structurally invalid.
    Format(String),
    /// An embedded R*-tree failed to decode.
    Tree(SerialError),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "i/o error: {e}"),
            SnapshotError::Page(e) => write!(f, "{e}"),
            SnapshotError::Format(m) => write!(f, "snapshot format error: {m}"),
            SnapshotError::Tree(e) => write!(f, "index decode error: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<PageError> for SnapshotError {
    fn from(e: PageError) -> Self {
        SnapshotError::Page(e)
    }
}

impl From<SerialError> for SnapshotError {
    fn from(e: SerialError) -> Self {
        SnapshotError::Tree(e)
    }
}

/// One unsharded catalog entry of a decoded snapshot.
#[derive(Debug, Clone)]
pub struct SnapshotRelation {
    /// The relation, restored bit-for-bit.
    pub relation: SeriesRelation,
    /// Its R*-tree, decoded (not re-bulk-loaded), when one was saved.
    pub index: Option<RTree>,
}

/// One catalog entry of a decoded snapshot: a plain relation or a sharded
/// one with its per-shard trees.
#[derive(Debug, Clone)]
pub enum SnapshotEntry {
    /// An unsharded relation (the only entry kind of format version 1).
    Single(SnapshotRelation),
    /// A sharded relation with one decoded R*-tree per shard.
    Sharded {
        /// The sharded relation, rows restored bit-for-bit per shard.
        relation: ShardedRelation,
        /// One decoded tree per shard, in shard order.
        indexes: Vec<RTree>,
    },
}

impl SnapshotEntry {
    /// The entry's relation name.
    pub fn name(&self) -> &str {
        match self {
            SnapshotEntry::Single(s) => s.relation.name(),
            SnapshotEntry::Sharded { relation, .. } => relation.name(),
        }
    }

    /// The unsharded entry, if this is one (the common case in tests).
    pub fn single(&self) -> Option<&SnapshotRelation> {
        match self {
            SnapshotEntry::Single(s) => Some(s),
            SnapshotEntry::Sharded { .. } => None,
        }
    }
}

/// One catalog entry to encode: borrowed views over the in-memory forms.
#[derive(Debug, Clone, Copy)]
pub enum SnapshotSource<'a> {
    /// An unsharded relation with its optional index.
    Single(&'a SeriesRelation, Option<&'a RTree>),
    /// A sharded relation with its per-shard trees (one per shard, in
    /// shard order).
    Sharded(&'a ShardedRelation, &'a [RTree]),
}

/// Encodes a catalog of unsharded relations (with optional indexes) into
/// a paged snapshot file image — the convenience wrapper over
/// [`catalog_to_bytes`].
pub fn to_bytes(entries: &[(&SeriesRelation, Option<&RTree>)]) -> Vec<u8> {
    let sources: Vec<SnapshotSource> = entries
        .iter()
        .map(|(rel, idx)| SnapshotSource::Single(rel, *idx))
        .collect();
    catalog_to_bytes(&sources)
}

/// Encodes a full catalog — unsharded and sharded entries — into a paged
/// snapshot file image.
///
/// # Panics
/// Panics if a sharded entry's tree list does not hold exactly one tree
/// per shard — the decoder routes rows and validates trees by shard
/// position, so a mismatched list would only surface as a corrupt
/// snapshot at reopen time.
pub fn catalog_to_bytes(entries: &[SnapshotSource]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_bytes(MAGIC);
    w.put_u32(VERSION);
    w.put_u32(entries.len() as u32);
    for entry in entries {
        match entry {
            SnapshotSource::Single(relation, index) => {
                encode_relation(relation, &mut w);
                match index {
                    Some(tree) => {
                        w.put_u8(1);
                        put_tree(tree, &mut w);
                    }
                    None => w.put_u8(0),
                }
            }
            SnapshotSource::Sharded(relation, indexes) => {
                assert_eq!(
                    indexes.len(),
                    relation.shard_count(),
                    "sharded snapshot entry {:?} needs one tree per shard",
                    relation.name()
                );
                encode_relation_header(
                    relation.name(),
                    relation.series_len(),
                    relation.scheme(),
                    &mut w,
                );
                // Rows flattened shard-major: the layout routes them back
                // to identical shards (same contents, same in-shard order)
                // on decode.
                w.put_u64(relation.len() as u64);
                for row in relation.rows() {
                    encode_row(row, &mut w);
                }
                w.put_u8(2);
                match relation.layout() {
                    ShardLayout::Hash { .. } => w.put_u8(0),
                }
                w.put_u32(relation.shard_count() as u32);
                for tree in *indexes {
                    put_tree(tree, &mut w);
                }
            }
        }
    }
    pages::to_file_bytes(&w.into_bytes())
}

/// Decodes a paged snapshot file image back into its catalog.
///
/// # Errors
/// [`SnapshotError`] on any checksum or structural violation.
pub fn from_bytes(file: &[u8]) -> Result<Vec<SnapshotEntry>, SnapshotError> {
    let stream = pages::from_file_bytes(file)?;
    let mut r = ByteReader::new(&stream);
    if r.take(8)? != MAGIC {
        return Err(SnapshotError::Format("bad snapshot magic".into()));
    }
    let version = r.get_u32()?;
    if version != 1 && version != VERSION {
        return Err(SnapshotError::Format(format!(
            "unsupported snapshot version {version} (expected 1 or {VERSION})"
        )));
    }
    let count = r.get_u32()? as usize;
    r.check_count(count, 1)?;
    let mut out = Vec::with_capacity(count);
    let mut names = HashSet::with_capacity(count);
    for i in 0..count {
        let entry = decode_entry(&mut r, version)
            .map_err(|e| prefix_format(e, &format!("relation {i}")))?;
        if !names.insert(entry.name().to_string()) {
            return Err(SnapshotError::Format(format!(
                "duplicate relation name {:?}",
                entry.name()
            )));
        }
        out.push(entry);
    }
    if r.remaining() != 0 {
        return Err(SnapshotError::Format(format!(
            "{} trailing bytes after catalog",
            r.remaining()
        )));
    }
    Ok(out)
}

/// Saves a catalog of unsharded relations to a snapshot file (the
/// convenience wrapper over [`save_catalog`]).
///
/// # Errors
/// I/O errors from the filesystem.
pub fn save(
    path: impl AsRef<Path>,
    entries: &[(&SeriesRelation, Option<&RTree>)],
) -> Result<(), SnapshotError> {
    pages::write_atomic(path.as_ref(), &to_bytes(entries))?;
    Ok(())
}

/// Saves a full catalog — unsharded and sharded entries — to a snapshot
/// file. The write is atomic (temp file + rename), so an existing
/// snapshot at `path` survives a crash or full disk mid-write intact.
///
/// # Errors
/// I/O errors from the filesystem.
pub fn save_catalog(
    path: impl AsRef<Path>,
    entries: &[SnapshotSource],
) -> Result<(), SnapshotError> {
    pages::write_atomic(path.as_ref(), &catalog_to_bytes(entries))?;
    Ok(())
}

/// Loads a catalog from a snapshot file.
///
/// # Errors
/// [`SnapshotError`] on I/O failure, checksum mismatch or structural
/// violation.
pub fn load(path: impl AsRef<Path>) -> Result<Vec<SnapshotEntry>, SnapshotError> {
    from_bytes(&fs::read(path)?)
}

fn put_tree(tree: &RTree, w: &mut ByteWriter) {
    let blob = serial::to_bytes(tree);
    w.put_u32(blob.len() as u32);
    w.put_bytes(&blob);
}

fn take_tree(r: &mut ByteReader<'_>) -> Result<RTree, SnapshotError> {
    let blob_len = r.get_u32()? as usize;
    let blob = r.take(blob_len)?;
    Ok(serial::from_bytes(blob)?)
}

fn encode_relation_header(
    name: &str,
    series_len: usize,
    scheme: &FeatureScheme,
    w: &mut ByteWriter,
) {
    w.put_str(name);
    w.put_u64(series_len as u64);
    w.put_u32(scheme.k as u32);
    w.put_u8(match scheme.rep {
        Representation::Rectangular => 0,
        Representation::Polar => 1,
    });
    w.put_u8(u8::from(scheme.include_stats));
}

fn encode_row(row: &SeriesRow, w: &mut ByteWriter) {
    w.put_u64(row.id);
    w.put_str(&row.name);
    for v in &row.raw {
        w.put_f64(*v);
    }
    w.put_f64(row.features.mean);
    w.put_f64(row.features.std_dev);
    w.put_u32(row.features.point.len() as u32);
    for v in &row.features.point {
        w.put_f64(*v);
    }
    w.put_u32(row.features.spectrum.len() as u32);
    for c in &row.features.spectrum {
        w.put_f64(c.re);
        w.put_f64(c.im);
    }
}

fn encode_relation(relation: &SeriesRelation, w: &mut ByteWriter) {
    encode_relation_header(relation.name(), relation.series_len(), relation.scheme(), w);
    w.put_u64(relation.len() as u64);
    for row in relation.rows() {
        encode_row(row, w);
    }
}

/// The decoded relation payload shared by unsharded and sharded entries.
struct RelationParts {
    name: String,
    series_len: usize,
    scheme: FeatureScheme,
    rows: Vec<SeriesRow>,
}

fn decode_relation_parts(r: &mut ByteReader<'_>) -> Result<RelationParts, SnapshotError> {
    let name = r.get_str()?;
    let series_len = usize_from(r.get_u64()?)?;
    let k = r.get_u32()? as usize;
    let rep = match r.get_u8()? {
        0 => Representation::Rectangular,
        1 => Representation::Polar,
        tag => {
            return Err(SnapshotError::Format(format!(
                "unknown representation tag {tag}"
            )))
        }
    };
    let include_stats = r.get_u8()? != 0;
    if k == 0 {
        return Err(SnapshotError::Format("scheme with k = 0".into()));
    }
    if series_len <= k {
        return Err(SnapshotError::Format(format!(
            "series length {series_len} cannot provide {k} coefficients"
        )));
    }
    let scheme = FeatureScheme::new(k, rep, include_stats);
    let dims = scheme.dims();

    let row_count = usize_from(r.get_u64()?)?;
    // Each row costs at least id + name length + raw + stats on the wire.
    r.check_count(row_count, 8 + 4 + 8 * series_len.min(1) + 16)?;
    r.check_count(series_len, 8)?;
    let mut rows = Vec::with_capacity(row_count);
    let mut ids = HashSet::with_capacity(row_count);
    for i in 0..row_count {
        let id = r.get_u64()?;
        if !ids.insert(id) {
            return Err(SnapshotError::Format(format!(
                "row {i}: duplicate row id {id}"
            )));
        }
        let row_name = r.get_str()?;
        let raw = r.get_f64_vec(series_len)?;
        let mean = r.get_f64()?;
        let std_dev = r.get_f64()?;
        let point_len = r.get_u32()? as usize;
        if point_len != dims {
            return Err(SnapshotError::Format(format!(
                "row {i}: index point has {point_len} dimensions, scheme needs {dims}"
            )));
        }
        let point = r.get_f64_vec(point_len)?;
        let spectrum_len = r.get_u32()? as usize;
        // The executors zip spectra against length-(n−1) multiplier
        // vectors; a wrong length would index out of bounds at query time.
        if spectrum_len != series_len {
            return Err(SnapshotError::Format(format!(
                "row {i}: spectrum has {spectrum_len} coefficients, series length is {series_len}"
            )));
        }
        let pairs = r.get_f64_vec(spectrum_len * 2)?;
        let spectrum: Vec<Complex> = pairs
            .chunks_exact(2)
            .map(|c| Complex::new(c[0], c[1]))
            .collect();
        rows.push(SeriesRow {
            id,
            name: row_name,
            raw,
            features: SeriesFeatures {
                point,
                mean,
                std_dev,
                spectrum,
            },
        });
    }
    Ok(RelationParts {
        name,
        series_len,
        scheme,
        rows,
    })
}

fn decode_entry(r: &mut ByteReader<'_>, version: u32) -> Result<SnapshotEntry, SnapshotError> {
    let parts = decode_relation_parts(r)?;
    let tag = r.get_u8()?;
    match tag {
        0 | 1 => {
            let relation = SeriesRelation::from_validated_parts(
                parts.name,
                parts.series_len,
                parts.scheme,
                parts.rows,
            );
            let index = if tag == 1 {
                let tree = take_tree(r)?;
                validate_index(&relation, &tree)?;
                Some(tree)
            } else {
                None
            };
            Ok(SnapshotEntry::Single(SnapshotRelation { relation, index }))
        }
        2 if version >= 2 => {
            let layout_tag = r.get_u8()?;
            if layout_tag != 0 {
                return Err(SnapshotError::Format(format!(
                    "unknown shard layout tag {layout_tag}"
                )));
            }
            let shard_count = r.get_u32()? as usize;
            if shard_count == 0 {
                return Err(SnapshotError::Format("sharded entry with 0 shards".into()));
            }
            r.check_count(shard_count, 4)?;
            let relation = ShardedRelation::from_parts(
                parts.name,
                parts.series_len,
                parts.scheme,
                ShardLayout::Hash {
                    shards: shard_count,
                },
                parts.rows,
            );
            let mut indexes = Vec::with_capacity(shard_count);
            for shard in 0..shard_count {
                let tree = take_tree(r)?;
                validate_index(relation.shard(shard), &tree)
                    .map_err(|e| prefix_format(e, &format!("shard {shard}")))?;
                indexes.push(tree);
            }
            Ok(SnapshotEntry::Sharded { relation, indexes })
        }
        tag => Err(SnapshotError::Format(format!("unknown index flag {tag}"))),
    }
}

/// Rejects an index that disagrees with its relation: wrong space, wrong
/// cardinality, or items that are not in bijection with the rows (query
/// execution trusts index ids unconditionally, and a duplicated id would
/// silently shadow a missing one).
fn validate_index(relation: &SeriesRelation, tree: &RTree) -> Result<(), SnapshotError> {
    let space = relation.scheme().space();
    if tree.space() != &space {
        return Err(SnapshotError::Format(format!(
            "index space disagrees with relation {:?}",
            relation.name()
        )));
    }
    if tree.len() != relation.len() {
        return Err(SnapshotError::Format(format!(
            "index holds {} items, relation {:?} has {} rows",
            tree.len(),
            relation.name(),
            relation.len()
        )));
    }
    let mut seen = HashSet::with_capacity(tree.len());
    for (_, id) in tree.items() {
        if relation.row(id).is_none() {
            return Err(SnapshotError::Format(format!(
                "index item id {id} has no row in relation {:?}",
                relation.name()
            )));
        }
        if !seen.insert(id) {
            return Err(SnapshotError::Format(format!(
                "index item id {id} appears twice in relation {:?}",
                relation.name()
            )));
        }
    }
    Ok(())
}

fn prefix_format(e: SnapshotError, ctx: &str) -> SnapshotError {
    match e {
        SnapshotError::Format(m) => SnapshotError::Format(format!("{ctx}: {m}")),
        other => other,
    }
}

fn usize_from(v: u64) -> Result<usize, SnapshotError> {
    usize::try_from(v).map_err(|_| SnapshotError::Format(format!("value {v} overflows usize")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simq_index::RTreeConfig;

    fn sample_relation(rows: usize) -> SeriesRelation {
        let mut rel = SeriesRelation::new("snaps", 32, FeatureScheme::paper_default());
        for i in 0..rows {
            let series: Vec<f64> = (0..32)
                .map(|t| 20.0 + i as f64 * 0.4 + ((t + 2 * i) as f64 * 0.31).sin() * 3.0)
                .collect();
            rel.insert(format!("R{i:03}"), series).unwrap();
        }
        rel
    }

    fn assert_rows_bitwise_equal(a: &SeriesRelation, b: &SeriesRelation) {
        assert_eq!(a.name(), b.name());
        assert_eq!(a.series_len(), b.series_len());
        assert_eq!(a.scheme(), b.scheme());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.rows().zip(b.rows()) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.name, y.name);
            let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&x.raw), bits(&y.raw));
            assert_eq!(x.features.mean.to_bits(), y.features.mean.to_bits());
            assert_eq!(x.features.std_dev.to_bits(), y.features.std_dev.to_bits());
            assert_eq!(bits(&x.features.point), bits(&y.features.point));
            assert_eq!(x.features.spectrum.len(), y.features.spectrum.len());
            for (c, d) in x.features.spectrum.iter().zip(&y.features.spectrum) {
                assert_eq!(c.re.to_bits(), d.re.to_bits());
                assert_eq!(c.im.to_bits(), d.im.to_bits());
            }
        }
    }

    #[test]
    fn roundtrip_relation_and_index() {
        let rel = sample_relation(40);
        let tree = rel.build_index(RTreeConfig::default());
        let file = to_bytes(&[(&rel, Some(&tree))]);
        let back = from_bytes(&file).unwrap();
        assert_eq!(back.len(), 1);
        let single = back[0].single().expect("unsharded entry");
        assert_rows_bitwise_equal(&rel, &single.relation);
        // The decoded tree has the identical arena: its re-encoding is
        // byte-identical to the original's.
        let loaded = single.index.as_ref().unwrap();
        assert_eq!(serial::to_bytes(loaded), serial::to_bytes(&tree));
    }

    #[test]
    fn roundtrip_sharded_entry() {
        let rel = sample_relation(30);
        let sharded = ShardedRelation::from_single(rel, 3);
        let trees = sharded.build_indexes(RTreeConfig::default());
        let file = catalog_to_bytes(&[SnapshotSource::Sharded(&sharded, &trees)]);
        let back = from_bytes(&file).unwrap();
        assert_eq!(back.len(), 1);
        let SnapshotEntry::Sharded { relation, indexes } = &back[0] else {
            panic!("expected a sharded entry");
        };
        assert_eq!(relation.shard_count(), 3);
        assert_eq!(relation.len(), 30);
        for (a, b) in sharded.shards().iter().zip(relation.shards()) {
            assert_rows_bitwise_equal(a, b);
        }
        // Per-shard trees decode arena-identical.
        for (a, b) in trees.iter().zip(indexes) {
            assert_eq!(serial::to_bytes(a), serial::to_bytes(b));
        }
    }

    #[test]
    fn sharded_entry_with_wrong_shard_tree_rejected() {
        let rel = sample_relation(24);
        let sharded = ShardedRelation::from_single(rel, 2);
        let mut trees = sharded.build_indexes(RTreeConfig::default());
        trees.swap(0, 1); // each tree now disagrees with its shard
        let file = catalog_to_bytes(&[SnapshotSource::Sharded(&sharded, &trees)]);
        assert!(matches!(from_bytes(&file), Err(SnapshotError::Format(_))));
    }

    #[test]
    fn roundtrip_multiple_relations_mixed_indexing() {
        let a = sample_relation(10);
        let mut b = SeriesRelation::new(
            "other",
            16,
            FeatureScheme::new(3, Representation::Rectangular, false),
        );
        for i in 0..7 {
            let series: Vec<f64> = (0..16)
                .map(|t| (t as f64 * (0.2 + i as f64 * 0.05)).cos() * 2.0 + 5.0)
                .collect();
            b.insert(format!("B{i}"), series).unwrap();
        }
        let tree = a.build_index(RTreeConfig::default());
        let file = to_bytes(&[(&a, Some(&tree)), (&b, None)]);
        let back = from_bytes(&file).unwrap();
        assert_eq!(back.len(), 2);
        assert!(back[0].single().unwrap().index.is_some());
        assert!(back[1].single().unwrap().index.is_none());
        assert_rows_bitwise_equal(&b, &back[1].single().unwrap().relation);
    }

    #[test]
    fn empty_catalog_roundtrips() {
        let back = from_bytes(&to_bytes(&[])).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn explicit_gappy_ids_survive() {
        let mut rel = SeriesRelation::new("gaps", 32, FeatureScheme::paper_default());
        for id in [3u64, 11, 4] {
            let series: Vec<f64> = (0..32)
                .map(|t| (t as f64 * 0.3 + id as f64).sin() * 2.0 + 10.0)
                .collect();
            rel.insert_with_id(id, format!("G{id}"), series).unwrap();
        }
        let back = from_bytes(&to_bytes(&[(&rel, None)])).unwrap();
        assert_rows_bitwise_equal(&rel, &back[0].single().unwrap().relation);
        assert_eq!(
            back[0].single().unwrap().relation.row(11).unwrap().name,
            "G11"
        );
    }

    #[test]
    fn index_relation_mismatch_rejected() {
        let rel = sample_relation(10);
        let other = sample_relation(12);
        let tree = other.build_index(RTreeConfig::default());
        // Pair rel with an index of different cardinality.
        let file = to_bytes(&[(&rel, Some(&tree))]);
        assert!(matches!(from_bytes(&file), Err(SnapshotError::Format(_))));
    }

    #[test]
    fn index_with_duplicate_item_ids_rejected() {
        let rel = sample_relation(2);
        let mut tree = RTree::new(rel.scheme().space(), RTreeConfig::default());
        let p = rel.row(0).unwrap().features.point.clone();
        tree.insert_point(&p, 0);
        tree.insert_point(&p, 0); // id 0 twice, id 1 never
        let file = to_bytes(&[(&rel, Some(&tree))]);
        let err = from_bytes(&file).unwrap_err();
        let SnapshotError::Format(msg) = err else {
            panic!("expected format error, got {err:?}");
        };
        assert!(msg.contains("appears twice"), "{msg}");
    }

    #[test]
    fn save_is_atomic_over_existing_snapshot() {
        let dir = std::env::temp_dir().join("simq-snapshot-atomic-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.simq");
        let rel = sample_relation(5);
        save(&path, &[(&rel, None)]).unwrap();
        // Overwrite with a different catalog; no temp file may remain.
        let rel2 = sample_relation(9);
        save(&path, &[(&rel2, None)]).unwrap();
        assert_eq!(load(&path).unwrap()[0].single().unwrap().relation.len(), 9);
        assert!(!dir.join("db.simq.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_byte_is_detected() {
        let rel = sample_relation(20);
        let tree = rel.build_index(RTreeConfig::default());
        let file = to_bytes(&[(&rel, Some(&tree))]);
        for pos in (0..file.len()).step_by(97) {
            let mut corrupt = file.clone();
            corrupt[pos] ^= 0x40;
            assert!(
                from_bytes(&corrupt).is_err(),
                "flip at byte {pos} went undetected"
            );
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("simq-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.simq");
        let rel = sample_relation(15);
        let tree = rel.build_index(RTreeConfig::default());
        save(&path, &[(&rel, Some(&tree))]).unwrap();
        let back = load(&path).unwrap();
        assert_rows_bitwise_equal(&rel, &back[0].single().unwrap().relation);
        std::fs::remove_file(&path).ok();
    }
}
