//! Quantized feature-signature filter tier.
//!
//! A [`SignatureArray`] keeps, per relation (and per shard), a contiguous
//! `f32` array of each row's first few normal-form spectrum coefficients —
//! a reduced-precision *signature* sitting between the index and the full
//! verification step. Scanning it is a branch-free pass over flat memory,
//! and the bound it yields is conservative in the paper's Lemma 1 sense:
//! the quantized lower bound never exceeds the true spectral distance, so
//! dismissing a candidate whose bound is already above the query threshold
//! can never drop an answer (**no false dismissals**), while every avoided
//! verification skips touching the row's full spectrum and raw series.
//!
//! The numeric contract is deliberately one-sided. Quantizing `f64 → f32`
//! loses at most a `2⁻²⁴` relative half-ulp per component; the probe
//! subtracts a slightly larger allowance from every per-coefficient
//! distance *before* squaring, then deflates the final sum once more.
//! Any non-finite intermediate (overflowed coefficients, infinite
//! transformed queries, NaN) degrades the affected term to zero — i.e. to
//! "keep the candidate" — so exotic inputs cost performance, never
//! correctness.

use simq_dsp::complex::Complex;

/// Number of leading spectrum coefficients a signature keeps (fewer when
/// the series itself is shorter). Eight complex coefficients = 64 bytes
/// per row: one cache line, two AVX-512 lanes of `f32`.
pub const SIG_COEFFS: usize = 8;

/// Relative quantization/rounding allowance per real component. One
/// `f64 → f32` round-trip costs at most `2⁻²⁴ ≈ 6e-8` relative; the probe
/// also divides the query by the transform multiplier in `f64` (≤ 1e-15
/// relative). `1.2e-7` covers both with margin to spare, including the
/// binade-boundary case where the proxy magnitude is half the true one.
const REL_EPS: f64 = 1.2e-7;

/// Absolute allowance covering subnormal-range quantization, where
/// relative error bounds stop applying (`f32` subnormal spacing is
/// `≈ 1.4e-45`; anything below `1e-40` absolute is noise at `f64` scale).
const ABS_EPS: f64 = 1e-40;

/// Contiguous reduced-precision signatures, position-parallel to a
/// relation's row vector: row at position `p` owns the `2·coeffs` floats
/// starting at `p · 2·coeffs` (interleaved re/im pairs).
///
/// Signatures are *derived* data: they are recomputed from stored spectra
/// on snapshot restore and pushed on every insert, so they never appear in
/// any persistence format and are bit-identical however a relation was
/// assembled (bulk load, incremental insert, WAL replay, reshard) —
/// the property the filter-equivalence suite pins.
#[derive(Debug, Clone, Default)]
pub struct SignatureArray {
    coeffs: usize,
    data: Vec<f32>,
}

impl SignatureArray {
    /// Creates an empty array keeping `coeffs` leading coefficients.
    pub fn new(coeffs: usize) -> Self {
        SignatureArray {
            coeffs,
            data: Vec::new(),
        }
    }

    /// The natural width for series of the given length: the first
    /// [`SIG_COEFFS`] coefficients, or all of them for short series.
    pub fn for_series_len(series_len: usize) -> Self {
        Self::new(series_len.min(SIG_COEFFS))
    }

    /// Coefficients kept per row.
    pub fn coeffs(&self) -> usize {
        self.coeffs
    }

    /// Number of signatures stored.
    pub fn len(&self) -> usize {
        if self.coeffs == 0 {
            0
        } else {
            self.data.len() / (2 * self.coeffs)
        }
    }

    /// True when no signatures are stored.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends the signature of a row with the given full spectrum.
    /// Deterministic round-to-nearest `f64 → f32` casts keep signatures
    /// bit-identical across every build path.
    pub fn push(&mut self, spectrum: &[Complex]) {
        self.data.reserve(2 * self.coeffs);
        for f in 0..self.coeffs {
            let c = spectrum.get(f).copied().unwrap_or(Complex::ZERO);
            self.data.push(c.re as f32);
            self.data.push(c.im as f32);
        }
    }

    /// The signature at row position `pos` (interleaved re/im pairs).
    pub fn row(&self, pos: usize) -> Option<&[f32]> {
        let w = 2 * self.coeffs;
        let start = pos.checked_mul(w)?;
        self.data.get(start..start + w)
    }

    /// The whole backing array (for contiguous scans).
    pub fn as_flat(&self) -> &[f32] {
        &self.data
    }

    /// Rebuilds from stored spectra (the snapshot-restore path).
    pub fn from_spectra<'a>(coeffs: usize, spectra: impl Iterator<Item = &'a [Complex]>) -> Self {
        let mut sigs = Self::new(coeffs);
        for s in spectra {
            sigs.push(s);
        }
        sigs
    }
}

/// One precomputed per-coefficient probe term: the transformed query
/// pulled back into raw-spectrum space, plus the scale restoring the
/// transform's contribution. Inert terms carry all zeros.
#[derive(Debug, Clone, Copy)]
struct ProbeTerm {
    w_re: f64,
    w_im: f64,
    scale_sq: f64,
}

const INERT: ProbeTerm = ProbeTerm {
    w_re: 0.0,
    w_im: 0.0,
    scale_sq: 0.0,
};

/// A compiled filter probe for one (query, transform) pair.
///
/// The verification distance is
/// `d² = |X₀ − q₀|² + Σ_{f≥1} |X_f·m_{f−1} − q_f|²`; for each signature
/// frequency the probe rewrites its term as `|m|²·|X_f − q_f/m|²` so the
/// stored quantized `X_f` can be compared directly. Terms with a zero
/// multiplier contribute the constant `|q_f|²` independent of the row;
/// frequencies beyond the signature width contribute nothing (dropping
/// non-negative terms keeps the bound a lower bound).
#[derive(Debug, Clone)]
pub struct FilterProbe {
    konst: f64,
    terms: Vec<ProbeTerm>,
}

impl FilterProbe {
    /// Compiles a probe for a query spectrum against rows whose signatures
    /// keep `coeffs` coefficients, under the transform's frequency
    /// `multipliers` (for frequencies `1..`, as the executors use them).
    pub fn new(q_spec: &[Complex], multipliers: &[Complex], coeffs: usize) -> Self {
        let n = coeffs.min(q_spec.len());
        let mut konst = 0.0f64;
        let mut terms = Vec::with_capacity(coeffs);
        for (f, &q) in q_spec.iter().enumerate().take(n) {
            let term = if f == 0 {
                // DC term: compared untransformed.
                if q.re.is_finite() && q.im.is_finite() {
                    ProbeTerm {
                        w_re: q.re,
                        w_im: q.im,
                        scale_sq: 1.0,
                    }
                } else {
                    INERT
                }
            } else {
                match multipliers.get(f - 1) {
                    Some(m) if m.norm_sqr() == 0.0 => {
                        // |X_f·0 − q_f|² = |q_f|², row-independent.
                        let e = q.norm_sqr();
                        if e.is_finite() {
                            konst += e;
                        }
                        INERT
                    }
                    Some(m) => {
                        let w = q / *m;
                        let scale_sq = m.norm_sqr();
                        if w.re.is_finite() && w.im.is_finite() && scale_sq.is_finite() {
                            ProbeTerm {
                                w_re: w.re,
                                w_im: w.im,
                                scale_sq,
                            }
                        } else {
                            INERT
                        }
                    }
                    // No multiplier for this frequency: the executors never
                    // reach this (multipliers cover every stored frequency),
                    // but degrading to inert keeps the bound sound anyway.
                    None => INERT,
                }
            };
            terms.push(term);
        }
        terms.resize(coeffs, INERT);
        FilterProbe { konst, terms }
    }

    /// A conservative lower bound on the squared verification distance of
    /// the row owning `sig`. Never exceeds the true squared distance when
    /// that distance is finite; never negative.
    #[inline]
    pub fn lower_bound_sq(&self, sig: &[f32]) -> f64 {
        let mut acc = self.konst;
        for (t, c) in self.terms.iter().zip(sig.chunks_exact(2)) {
            let cre = c[0] as f64;
            let cim = c[1] as f64;
            // Allowance per component: relative in the *larger* of the two
            // magnitudes' sum, plus a subnormal floor. A NaN propagating
            // into `dx` collapses to 0 via `max` (NaN.max(0) == 0).
            let e_re = (cre.abs() + t.w_re.abs()) * REL_EPS + ABS_EPS;
            let e_im = (cim.abs() + t.w_im.abs()) * REL_EPS + ABS_EPS;
            let dx = ((t.w_re - cre).abs() - e_re).max(0.0);
            let dy = ((t.w_im - cim).abs() - e_im).max(0.0);
            acc += t.scale_sq * (dx * dx + dy * dy);
        }
        if acc.is_finite() {
            // Final deflation absorbs the f64 accumulation rounding of the
            // verification sum itself.
            (acc * (1.0 - 1e-9) - 1e-12).max(0.0)
        } else {
            0.0
        }
    }

    /// True when the row owning `sig` provably lies outside the squared
    /// threshold and full verification can be skipped.
    #[inline]
    pub fn dismisses(&self, sig: &[f32], threshold_sq: f64) -> bool {
        self.lower_bound_sq(sig) > threshold_sq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn true_distance_sq(spectrum: &[Complex], multipliers: &[Complex], q: &[Complex]) -> f64 {
        let mut acc = 0.0;
        for (f, x) in spectrum.iter().enumerate() {
            let t = if f == 0 {
                *x - q[0]
            } else {
                *x * multipliers[f - 1] - q[f]
            };
            acc += t.norm_sqr();
        }
        acc
    }

    fn pseudo(seed: u64, n: usize) -> Vec<Complex> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f64) / ((1u64 << 53) as f64) * 2.0 - 1.0
        };
        (0..n)
            .map(|_| Complex::new(next() * 50.0, next() * 50.0))
            .collect()
    }

    #[test]
    fn signatures_are_position_parallel() {
        let mut sigs = SignatureArray::new(3);
        let a = pseudo(1, 5);
        let b = pseudo(2, 5);
        sigs.push(&a);
        sigs.push(&b);
        assert_eq!(sigs.len(), 2);
        let row1 = sigs.row(1).unwrap();
        assert_eq!(row1.len(), 6);
        assert_eq!(row1[0], b[0].re as f32);
        assert_eq!(row1[5], b[2].im as f32);
        assert!(sigs.row(2).is_none());
    }

    #[test]
    fn short_spectra_pad_with_zeros() {
        let mut sigs = SignatureArray::new(4);
        sigs.push(&pseudo(3, 2));
        let row = sigs.row(0).unwrap();
        assert_eq!(&row[4..], &[0.0f32; 4]);
    }

    #[test]
    fn lower_bound_never_exceeds_true_distance() {
        for seed in 0..200u64 {
            let n = 4 + (seed % 13) as usize;
            let x = pseudo(seed * 3 + 1, n);
            let q = pseudo(seed * 3 + 2, n);
            let m = pseudo(seed * 3 + 3, n - 1);
            let coeffs = n.min(SIG_COEFFS);
            let mut sigs = SignatureArray::new(coeffs);
            sigs.push(&x);
            let probe = FilterProbe::new(&q, &m, coeffs);
            let lb = probe.lower_bound_sq(sigs.row(0).unwrap());
            let d = true_distance_sq(&x, &m, &q);
            assert!(lb <= d, "seed {seed}: lb {lb} > true {d}");
        }
    }

    #[test]
    fn identical_series_get_zero_bound() {
        let x = pseudo(9, 8);
        let m: Vec<Complex> = vec![Complex::ONE; 7];
        let mut sigs = SignatureArray::new(8);
        sigs.push(&x);
        let probe = FilterProbe::new(&x, &m, 8);
        assert_eq!(probe.lower_bound_sq(sigs.row(0).unwrap()), 0.0);
    }

    #[test]
    fn zero_multiplier_contributes_query_energy() {
        // With m = 0 at every frequency, d² = |X₀−q₀|² + Σ|q_f|² exactly;
        // the probe should recover almost all of it.
        let x = pseudo(11, 6);
        let q = pseudo(12, 6);
        let m = vec![Complex::ZERO; 5];
        let mut sigs = SignatureArray::new(6);
        sigs.push(&x);
        let probe = FilterProbe::new(&q, &m, 6);
        let lb = probe.lower_bound_sq(sigs.row(0).unwrap());
        let d = true_distance_sq(&x, &m, &q);
        assert!(lb <= d);
        assert!(lb > 0.9 * d, "bound too loose: {lb} vs {d}");
    }

    #[test]
    fn non_finite_inputs_degrade_to_keep() {
        let x = vec![Complex::new(f64::MAX, 0.0), Complex::new(1e300, 1e300)];
        let q = vec![
            Complex::new(f64::INFINITY, 0.0),
            Complex::new(f64::NAN, 0.0),
        ];
        let m = vec![Complex::new(1e-300, 0.0)];
        let mut sigs = SignatureArray::new(2);
        sigs.push(&x); // 1e300 overflows to f32::INFINITY
        let probe = FilterProbe::new(&q, &m, 2);
        let lb = probe.lower_bound_sq(sigs.row(0).unwrap());
        assert!(lb.is_finite());
        assert!(!probe.dismisses(sigs.row(0).unwrap(), 0.0) || lb == 0.0);
    }

    #[test]
    fn dismisses_distant_rows() {
        let x = vec![Complex::new(1000.0, 0.0); 8];
        let q = vec![Complex::new(-1000.0, 0.0); 8];
        let m = vec![Complex::ONE; 7];
        let mut sigs = SignatureArray::new(8);
        sigs.push(&x);
        let probe = FilterProbe::new(&q, &m, 8);
        assert!(probe.dismisses(sigs.row(0).unwrap(), 1.0));
    }
}
