//! Relations of time series.
//!
//! "We assume relations are unary, that is, they are simply sets of
//! sequences; in practice of course they may have other attributes, such
//! as source of the data, time period covered, etc." — each row carries a
//! name attribute alongside the sequence.
//!
//! A relation stores, per row, the raw series, the extracted features
//! (index point, mean, standard deviation) and the full normal-form
//! spectrum — the frequency-domain storage the paper's improved sequential
//! scan operates on.

use crate::sig::SignatureArray;
use simq_dsp::complex::Complex;
use simq_index::geom::Rect;
use simq_index::{RTree, RTreeConfig};
use simq_series::error::SeriesError;
use simq_series::features::{FeatureScheme, SeriesFeatures};
use std::collections::HashMap;

/// One stored series with its derived data.
#[derive(Debug, Clone)]
pub struct SeriesRow {
    /// Row identifier, unique within the relation.
    pub id: u64,
    /// Name attribute (ticker, station id, …).
    pub name: String,
    /// The raw series as inserted.
    pub raw: Vec<f64>,
    /// Extracted features: index point, statistics, normal-form spectrum.
    pub features: SeriesFeatures,
}

/// A unary relation of equal-length time series.
#[derive(Debug, Clone)]
pub struct SeriesRelation {
    name: String,
    series_len: usize,
    scheme: FeatureScheme,
    rows: Vec<SeriesRow>,
    /// Id the next [`SeriesRelation::insert`] will assign (one past the
    /// largest id ever stored, so explicit-id restores never collide).
    next_id: u64,
    /// Id → row position. `None` while ids are *dense* (`rows[i].id == i`,
    /// the invariant every sequentially built relation keeps), where
    /// positions double as ids; built lazily the first time an explicit-id
    /// insert breaks density, keeping [`SeriesRelation::row`] O(1) either
    /// way.
    by_id: Option<HashMap<u64, usize>>,
    /// Quantized filter-tier signatures, position-parallel to `rows`.
    /// Derived data — maintained on every insert, rebuilt on restore,
    /// never persisted.
    sigs: SignatureArray,
}

impl SeriesRelation {
    /// Creates an empty relation for series of length `series_len` indexed
    /// under `scheme`.
    ///
    /// # Panics
    /// Panics if `series_len` cannot support the scheme (`series_len ≤ k`).
    pub fn new(name: impl Into<String>, series_len: usize, scheme: FeatureScheme) -> Self {
        assert!(
            series_len > scheme.k,
            "series of length {series_len} cannot provide {} coefficients",
            scheme.k
        );
        SeriesRelation {
            name: name.into(),
            series_len,
            scheme,
            rows: Vec::new(),
            next_id: 0,
            by_id: None,
            sigs: SignatureArray::for_series_len(series_len),
        }
    }

    /// Rebuilds a relation from fully materialized rows (the snapshot
    /// restore path) — no feature extraction is run, so row contents are
    /// restored bit-for-bit. The caller (the snapshot decoder) has already
    /// validated the parts; this constructor only `debug_assert`s them.
    pub(crate) fn from_validated_parts(
        name: String,
        series_len: usize,
        scheme: FeatureScheme,
        rows: Vec<SeriesRow>,
    ) -> Self {
        debug_assert!(series_len > scheme.k);
        debug_assert!(rows.iter().all(|r| r.raw.len() == series_len));
        let next_id = rows.iter().map(|r| r.id + 1).max().unwrap_or(0);
        let dense = rows.iter().enumerate().all(|(i, r)| r.id == i as u64);
        let by_id = (!dense).then(|| {
            rows.iter()
                .enumerate()
                .map(|(i, r)| (r.id, i))
                .collect::<HashMap<u64, usize>>()
        });
        // Signatures are derived, not persisted: recompute them here so
        // every restore path (snapshot decode, durable open, reshard)
        // carries a filter tier bit-identical to a freshly built one.
        let sigs = SignatureArray::from_spectra(
            series_len.min(crate::sig::SIG_COEFFS),
            rows.iter().map(|r| r.features.spectrum.as_slice()),
        );
        SeriesRelation {
            name,
            series_len,
            scheme,
            rows,
            next_id,
            by_id,
            sigs,
        }
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Length every stored series must have.
    pub fn series_len(&self) -> usize {
        self.series_len
    }

    /// The feature scheme rows are extracted under.
    pub fn scheme(&self) -> &FeatureScheme {
        &self.scheme
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Inserts a series; returns its row id.
    ///
    /// # Errors
    /// [`SeriesError::DimensionMismatch`] when the length differs from the
    /// relation's; feature-extraction errors otherwise (constant series
    /// have no normal form).
    pub fn insert(
        &mut self,
        name: impl Into<String>,
        series: Vec<f64>,
    ) -> Result<u64, SeriesError> {
        let id = self.next_id;
        self.insert_with_id(id, name, series)
    }

    /// Inserts a series under an explicit row id (the persistence restore
    /// path: the v2 text format and snapshots carry ids, so save → load
    /// keeps id-based references valid).
    ///
    /// # Errors
    /// [`SeriesError::DimensionMismatch`] on wrong length,
    /// [`SeriesError::DuplicateRowId`] when `id` is already taken,
    /// feature-extraction errors otherwise.
    pub fn insert_with_id(
        &mut self,
        id: u64,
        name: impl Into<String>,
        series: Vec<f64>,
    ) -> Result<u64, SeriesError> {
        if series.len() != self.series_len {
            return Err(SeriesError::DimensionMismatch {
                expected: self.series_len,
                actual: series.len(),
            });
        }
        // Ids at or above `next_id` have never been assigned, so only
        // smaller ids can collide — sequential inserts skip the lookup.
        if id < self.next_id && self.row(id).is_some() {
            return Err(SeriesError::DuplicateRowId(id));
        }
        let features = self.scheme.extract(&series)?;
        let pos = self.rows.len();
        self.sigs.push(&features.spectrum);
        self.rows.push(SeriesRow {
            id,
            name: name.into(),
            raw: series,
            features,
        });
        match &mut self.by_id {
            Some(map) => {
                map.insert(id, pos);
            }
            None if id != pos as u64 => {
                // Density just broke; index every row from here on.
                self.by_id = Some(
                    self.rows
                        .iter()
                        .enumerate()
                        .map(|(i, r)| (r.id, i))
                        .collect(),
                );
            }
            None => {}
        }
        self.next_id = self.next_id.max(id + 1);
        Ok(id)
    }

    /// Consumes the relation, returning its rows in insertion order (the
    /// shard re-partitioning path: rows move bit-for-bit, no feature
    /// re-extraction).
    pub(crate) fn into_rows(self) -> Vec<SeriesRow> {
        self.rows
    }

    /// The id the next [`SeriesRelation::insert`] will assign (one past
    /// the largest id ever stored).
    pub fn next_id(&self) -> u64 {
        self.next_id
    }

    /// Records that ids up to `id` were consumed without necessarily
    /// storing rows, advancing the next-id watermark past them. The
    /// durable write path calls this after a *failed* WAL group append:
    /// the failure can still leave a durable prefix of complete records
    /// on disk (e.g. the sync died after a partial write), and replay
    /// will apply that prefix — so no later insert may ever reuse an id
    /// the failed group carried.
    pub fn note_inserted(&mut self, id: u64) {
        self.next_id = self.next_id.max(id + 1);
    }

    /// Row access by id — O(1) whether ids are dense (sequential inserts:
    /// position doubles as id) or explicit with gaps (id map).
    pub fn row(&self, id: u64) -> Option<&SeriesRow> {
        match &self.by_id {
            Some(map) => map.get(&id).map(|&pos| &self.rows[pos]),
            None => self.rows.get(id as usize),
        }
    }

    /// Iterates over rows in insertion order (equal to id order for
    /// sequentially built relations; explicit-id inserts and persisted
    /// files keep whatever order rows were added/stored in).
    pub fn rows(&self) -> impl Iterator<Item = &SeriesRow> {
        self.rows.iter()
    }

    /// The stored normal-form spectrum of a row.
    pub fn spectrum(&self, id: u64) -> Option<&[Complex]> {
        self.row(id).map(|r| r.features.spectrum.as_slice())
    }

    /// The quantized filter-tier signature of a row — O(1), mirroring
    /// [`SeriesRelation::row`]'s dense-or-map lookup.
    pub fn signature(&self, id: u64) -> Option<&[f32]> {
        let pos = match &self.by_id {
            Some(map) => *map.get(&id)?,
            None => {
                let pos = id as usize;
                if pos >= self.rows.len() {
                    return None;
                }
                pos
            }
        };
        self.sigs.row(pos)
    }

    /// The relation's signature array (contiguous, position-parallel to
    /// insertion order).
    pub fn signatures(&self) -> &SignatureArray {
        &self.sigs
    }

    /// Builds an R*-tree over the feature points (bulk-loaded).
    pub fn build_index(&self, config: RTreeConfig) -> RTree {
        let items: Vec<(Rect, u64)> = self
            .rows
            .iter()
            .map(|r| (Rect::point(&r.features.point), r.id))
            .collect();
        RTree::bulk_load(self.scheme.space(), config, items)
    }

    /// Builds the index by repeated insertion (for the ablation comparing
    /// insertion-built and bulk-loaded trees).
    pub fn build_index_incremental(&self, config: RTreeConfig) -> RTree {
        let mut tree = RTree::new(self.scheme.space(), config);
        for r in &self.rows {
            tree.insert_point(&r.features.point, r.id);
        }
        tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simq_series::features::Representation;

    fn test_relation(n_rows: usize) -> SeriesRelation {
        let scheme = FeatureScheme::paper_default();
        let mut rel = SeriesRelation::new("stocks", 64, scheme);
        for i in 0..n_rows {
            let series: Vec<f64> = (0..64)
                .map(|t| 30.0 + (i as f64) + ((t * (i + 2)) as f64 * 0.1).sin() * 5.0)
                .collect();
            rel.insert(format!("S{i}"), series).unwrap();
        }
        rel
    }

    #[test]
    fn insert_and_lookup() {
        let rel = test_relation(10);
        assert_eq!(rel.len(), 10);
        let row = rel.row(3).unwrap();
        assert_eq!(row.name, "S3");
        assert_eq!(row.raw.len(), 64);
        assert_eq!(row.features.point.len(), 6);
    }

    #[test]
    fn wrong_length_rejected() {
        let mut rel = test_relation(1);
        let err = rel.insert("bad", vec![1.0; 32]).unwrap_err();
        assert!(matches!(err, SeriesError::DimensionMismatch { .. }));
    }

    #[test]
    fn constant_series_rejected() {
        let mut rel = test_relation(0);
        assert!(matches!(
            rel.insert("flat", vec![5.0; 64]),
            Err(SeriesError::ZeroVariance)
        ));
    }

    #[test]
    fn explicit_ids_roundtrip_and_collide() {
        let mut rel = test_relation(0);
        let series: Vec<f64> = (0..64).map(|t| (t as f64 * 0.2).sin() + 40.0).collect();
        assert_eq!(rel.insert_with_id(7, "seven", series.clone()).unwrap(), 7);
        assert_eq!(rel.row(7).unwrap().name, "seven");
        assert!(rel.row(0).is_none());
        // Duplicate ids are rejected.
        assert!(matches!(
            rel.insert_with_id(7, "again", series.clone()),
            Err(SeriesError::DuplicateRowId(7))
        ));
        // Sequential insertion continues past the largest explicit id.
        let id = rel.insert("next", series).unwrap();
        assert_eq!(id, 8);
        assert_eq!(rel.row(8).unwrap().name, "next");
    }

    #[test]
    fn index_contains_every_row() {
        let rel = test_relation(50);
        let tree = rel.build_index(RTreeConfig::default());
        assert_eq!(tree.len(), 50);
        let mut ids: Vec<u64> = tree.items().into_iter().map(|(_, id)| id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..50).collect::<Vec<u64>>());
    }

    #[test]
    fn incremental_and_bulk_index_agree_on_queries() {
        let rel = test_relation(80);
        let bulk = rel.build_index(RTreeConfig::default());
        let incr = rel.build_index_incremental(RTreeConfig::default());
        let q = &rel.row(5).unwrap().features.point;
        let rect = rel.scheme().search_rect(q, 2.0);
        let (mut a, _) = bulk.range(&rect);
        let (mut b, _) = incr.range(&rect);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn rect_scheme_relation() {
        let scheme = FeatureScheme::new(3, Representation::Rectangular, false);
        let mut rel = SeriesRelation::new("r", 32, scheme);
        let id = rel
            .insert(
                "x",
                (0..32)
                    .map(|t| (t as f64 * 0.5).cos() * 3.0 + 10.0)
                    .collect(),
            )
            .unwrap();
        assert_eq!(rel.row(id).unwrap().features.point.len(), 6);
    }

    #[test]
    #[should_panic(expected = "cannot provide")]
    fn scheme_too_wide_for_length() {
        let scheme = FeatureScheme::new(64, Representation::Polar, false);
        let _ = SeriesRelation::new("bad", 64, scheme);
    }
}
