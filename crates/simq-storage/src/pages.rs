//! The paged binary file layer under snapshots.
//!
//! A snapshot is one logical byte stream chunked into fixed-size pages, the
//! unit a production storage engine reads, caches and checksums
//! independently. The layout (all integers little-endian):
//!
//! ```text
//! page 0 (superblock):
//!   magic      "SIMQPAGE"            8 bytes
//!   version    u32                   format version (currently 1)
//!   page_size  u32                   fixed page size (4096)
//!   page_count u64                   total pages including this one
//!   stream_len u64                   logical stream length in bytes
//!   checksum   u64                   [`checksum`] of the 32 bytes above
//!   zero padding to page_size
//! pages 1..page_count (data):
//!   checksum   u64                   [`checksum`] of the payload area
//!   payload    page_size − 8 bytes   stream bytes, zero-padded in the last page
//! ```
//!
//! Every byte of the file is covered: the superblock fields by the header
//! checksum, payloads *and their padding* by per-page checksums, and the
//! file length by `page_count` (trailing garbage is rejected). A single
//! flipped byte anywhere therefore fails verification — the corruption
//! property tests flip every position and expect an error.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::Path;

/// Fixed page size of the format.
pub const PAGE_SIZE: usize = 4096;
/// Bytes of stream payload per data page (the rest is the checksum).
pub const PAGE_PAYLOAD: usize = PAGE_SIZE - 8;

const MAGIC: &[u8; 8] = b"SIMQPAGE";
const VERSION: u32 = 1;
/// Superblock bytes covered by the header checksum.
const HEADER_LEN: usize = 8 + 4 + 4 + 8 + 8;

/// Errors from reading a paged file.
#[derive(Debug)]
pub enum PageError {
    /// I/O failure.
    Io(io::Error),
    /// The file is not a paged snapshot or its geometry is inconsistent.
    Format(String),
    /// A page failed checksum verification.
    Checksum {
        /// Page index (0 is the superblock).
        page: u64,
    },
}

impl std::fmt::Display for PageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PageError::Io(e) => write!(f, "i/o error: {e}"),
            PageError::Format(m) => write!(f, "page format error: {m}"),
            PageError::Checksum { page } => write!(f, "checksum mismatch in page {page}"),
        }
    }
}

impl std::error::Error for PageError {}

impl From<io::Error> for PageError {
    fn from(e: io::Error) -> Self {
        PageError::Io(e)
    }
}

/// Word-wise 64-bit checksum (xxHash-style mix rounds over little-endian
/// `u64` words, byte tail folded in) — dependency-free, byte-order stable,
/// and an order of magnitude faster than byte-serial FNV on the multi-MB
/// streams cold starts read. Any single-byte change flips the result.
pub fn checksum(bytes: &[u8]) -> u64 {
    const C1: u64 = 0x9E37_79B1_85EB_CA87;
    const C2: u64 = 0xC2B2_AE3D_27D4_EB4F;
    let mut h: u64 = 0x27D4_EB2F_1656_67C5 ^ (bytes.len() as u64);
    let mut chunks = bytes.chunks_exact(8);
    for w in &mut chunks {
        let w = u64::from_le_bytes(w.try_into().expect("8 bytes"));
        h = (h ^ w.wrapping_mul(C1)).rotate_left(31).wrapping_mul(C2);
    }
    for b in chunks.remainder() {
        h = (h ^ u64::from(*b).wrapping_mul(C1))
            .rotate_left(11)
            .wrapping_mul(C2);
    }
    // Final avalanche so low-entropy inputs still spread over all bits.
    h ^= h >> 33;
    h = h.wrapping_mul(C2);
    h ^= h >> 29;
    h
}

/// Wraps a logical byte stream into a paged file image.
pub fn to_file_bytes(stream: &[u8]) -> Vec<u8> {
    let data_pages = stream.len().div_ceil(PAGE_PAYLOAD);
    let page_count = (data_pages + 1) as u64;
    let mut out = Vec::with_capacity(page_count as usize * PAGE_SIZE);

    // Superblock.
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(PAGE_SIZE as u32).to_le_bytes());
    out.extend_from_slice(&page_count.to_le_bytes());
    out.extend_from_slice(&(stream.len() as u64).to_le_bytes());
    let header_sum = checksum(&out[..HEADER_LEN]);
    out.extend_from_slice(&header_sum.to_le_bytes());
    out.resize(PAGE_SIZE, 0);

    // Data pages.
    for chunk in stream.chunks(PAGE_PAYLOAD) {
        let mut payload = [0u8; PAGE_PAYLOAD];
        payload[..chunk.len()].copy_from_slice(chunk);
        out.extend_from_slice(&checksum(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
    }
    out
}

/// Verifies a paged file image and returns the logical byte stream.
///
/// # Errors
/// [`PageError`] on any geometry inconsistency or checksum mismatch.
pub fn from_file_bytes(file: &[u8]) -> Result<Vec<u8>, PageError> {
    if file.len() < PAGE_SIZE {
        return Err(PageError::Format(format!(
            "file of {} bytes is smaller than one page",
            file.len()
        )));
    }
    if &file[..8] != MAGIC {
        return Err(PageError::Format("bad magic".into()));
    }
    let version = u32::from_le_bytes(file[8..12].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(PageError::Format(format!(
            "unsupported page-format version {version} (expected {VERSION})"
        )));
    }
    let page_size = u32::from_le_bytes(file[12..16].try_into().expect("4 bytes")) as usize;
    if page_size != PAGE_SIZE {
        return Err(PageError::Format(format!(
            "page size {page_size} (expected {PAGE_SIZE})"
        )));
    }
    let page_count = u64::from_le_bytes(file[16..24].try_into().expect("8 bytes"));
    let stream_len_u64 = u64::from_le_bytes(file[24..32].try_into().expect("8 bytes"));
    let stored_sum = u64::from_le_bytes(file[32..40].try_into().expect("8 bytes"));
    if checksum(&file[..HEADER_LEN]) != stored_sum {
        return Err(PageError::Checksum { page: 0 });
    }
    // Superblock padding must be zero — it is not otherwise checksummed.
    if file[40..PAGE_SIZE].iter().any(|b| *b != 0) {
        return Err(PageError::Format("nonzero superblock padding".into()));
    }

    let Ok(stream_len) = usize::try_from(stream_len_u64) else {
        return Err(PageError::Format(format!(
            "stream length {stream_len_u64} overflows usize"
        )));
    };
    let expected_pages = (stream_len.div_ceil(PAGE_PAYLOAD) + 1) as u64;
    if page_count != expected_pages {
        return Err(PageError::Format(format!(
            "page count {page_count} disagrees with stream length {stream_len} \
             (expected {expected_pages} pages)"
        )));
    }
    let expected_file_len = page_count as usize * PAGE_SIZE;
    if file.len() != expected_file_len {
        return Err(PageError::Format(format!(
            "file is {} bytes, geometry requires {expected_file_len}",
            file.len()
        )));
    }

    let mut stream = Vec::with_capacity(stream_len);
    for (i, page) in file[PAGE_SIZE..].chunks_exact(PAGE_SIZE).enumerate() {
        let stored = u64::from_le_bytes(page[..8].try_into().expect("8 bytes"));
        let payload = &page[8..];
        if checksum(payload) != stored {
            return Err(PageError::Checksum { page: i as u64 + 1 });
        }
        let take = (stream_len - stream.len()).min(PAGE_PAYLOAD);
        stream.extend_from_slice(&payload[..take]);
        // Padding beyond the stream participates in the checksum above, so
        // a flip there is already caught; require it to be zero as well so
        // the encoding is canonical.
        if payload[take..].iter().any(|b| *b != 0) {
            return Err(PageError::Format(format!(
                "nonzero padding in final page {}",
                i + 1
            )));
        }
    }
    Ok(stream)
}

/// Fsyncs the directory at `dir` so entries created, renamed or removed
/// inside it are durable. A rename is only a commit point once the
/// *directory entry* reaches disk: `fs::rename` orders the data (the temp
/// file was flushed first) but says nothing about the entry itself, and on
/// power loss an unsynced directory can legally forget the rename, the
/// file creation, or both.
pub(crate) fn fsync_dir(dir: &Path) -> io::Result<()> {
    // Opening a directory read-only and calling fsync on it is the
    // POSIX-blessed way to flush its entries (what every database does).
    File::open(dir)?.sync_all()
}

/// [`fsync_dir`] for the parent of `path` (no-op when `path` has none).
pub(crate) fn fsync_parent_dir(path: &Path) -> io::Result<()> {
    match path.parent() {
        Some(dir) if !dir.as_os_str().is_empty() => fsync_dir(dir),
        _ => Ok(()),
    }
}

/// Writes `bytes` to `path` atomically and durably: the data goes to a
/// temporary file in the same directory which is fsynced, renamed over the
/// target, and sealed with a parent-directory fsync — so a crash or full
/// disk mid-write never destroys an existing good file, and once this
/// returns the rename itself survives power loss (the parent fsync is what
/// makes the rename a commit point, not just an in-cache state).
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut tmp_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?
        .to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    let write_synced = || -> io::Result<()> {
        let mut file = File::create(&tmp)?;
        file.write_all(bytes)?;
        // Flush the temp file's *contents* before the rename: rename must
        // never expose a file whose data could still be lost.
        file.sync_all()
    };
    write_synced().inspect_err(|_| {
        fs::remove_file(&tmp).ok();
    })?;
    fs::rename(&tmp, path).inspect_err(|_| {
        fs::remove_file(&tmp).ok();
    })?;
    fsync_parent_dir(path)
}

/// Writes a logical stream to a paged file (atomically, via a temp-file
/// rename: an existing file at `path` survives a failed write intact).
///
/// # Errors
/// I/O errors from the filesystem.
pub fn write_file(path: impl AsRef<Path>, stream: &[u8]) -> io::Result<()> {
    write_atomic(path.as_ref(), &to_file_bytes(stream))
}

/// Reads and verifies a paged file, returning the logical stream.
///
/// # Errors
/// [`PageError`] on I/O failure, geometry inconsistency or checksum
/// mismatch.
pub fn read_file(path: impl AsRef<Path>) -> Result<Vec<u8>, PageError> {
    from_file_bytes(&fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stream(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 31 % 251) as u8).collect()
    }

    #[test]
    fn roundtrip_various_sizes() {
        for n in [
            0,
            1,
            PAGE_PAYLOAD - 1,
            PAGE_PAYLOAD,
            PAGE_PAYLOAD + 1,
            3 * PAGE_PAYLOAD + 17,
        ] {
            let stream = sample_stream(n);
            let file = to_file_bytes(&stream);
            assert_eq!(file.len() % PAGE_SIZE, 0);
            assert_eq!(from_file_bytes(&file).unwrap(), stream);
        }
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let stream = sample_stream(PAGE_PAYLOAD + 100);
        let file = to_file_bytes(&stream);
        for pos in 0..file.len() {
            let mut corrupt = file.clone();
            corrupt[pos] ^= 0x01;
            assert!(
                from_file_bytes(&corrupt).is_err(),
                "flip at byte {pos} went undetected"
            );
        }
    }

    #[test]
    fn truncated_and_padded_files_rejected() {
        let file = to_file_bytes(&sample_stream(100));
        assert!(from_file_bytes(&file[..file.len() - 1]).is_err());
        assert!(from_file_bytes(&file[..PAGE_SIZE / 2]).is_err());
        let mut longer = file.clone();
        longer.extend_from_slice(&[0u8; 7]);
        assert!(from_file_bytes(&longer).is_err());
        let mut extra_page = file;
        extra_page.extend_from_slice(&[0u8; PAGE_SIZE]);
        assert!(from_file_bytes(&extra_page).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("simq-pages-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.bin");
        let stream = sample_stream(10_000);
        write_file(&path, &stream).unwrap();
        assert_eq!(read_file(&path).unwrap(), stream);
        std::fs::remove_file(&path).ok();
    }
}
