//! Group commit: coalescing concurrent WAL appends into shared syncs.
//!
//! A `sync_data` costs the same whether it makes one record durable or
//! fifty, so the write path's throughput ceiling is syncs, not bytes. A
//! [`WriteGroup`] amortizes that cost: writers enqueue encoded records
//! under a mutex, exactly one of them becomes the *leader* and flushes
//! everything pending with a single write + sync, and every writer whose
//! records made that flush is woken only after the sync returned — the
//! acknowledged-write guarantee is unchanged, acknowledgment just travels
//! in batches.
//!
//! The protocol (classic leader/follower, as in ARIES-style group commit):
//!
//! 1. `submit` appends the encoded records to the pending buffer and takes
//!    a ticket: the sequence number of its last record.
//! 2. If no flush is running, the caller elects itself leader, takes the
//!    whole pending buffer (its own records *plus* anything enqueued by
//!    writers that arrived while a previous flush ran), releases the lock,
//!    and performs one write + one sync through the [`GroupSink`].
//! 3. Followers wait on a condvar until the flush that drained their
//!    records completes, then take that flush's own outcome: ack if it
//!    synced, its I/O error if it failed.
//!
//! A failed flush poisons exactly the records it covered: their writers
//! get the error, the buffer is empty again, and later submissions start
//! fresh. Every ticket resolves against the *specific* flush that drained
//! it — outcomes are kept per flush, not as global watermarks — so a
//! later successful flush can never acknowledge a record an earlier
//! failed flush lost (and a later failure can never error a record that
//! was already durable). This mirrors the file state — a torn group is a
//! prefix on disk, repaired at replay like any torn tail.

use crate::wal::{encode_record, WalRecord};
use std::collections::VecDeque;
use std::io;
use std::sync::{Condvar, Mutex};

/// Destination of a group flush: one durable append of a byte run.
///
/// The production sink opens the shard's log file and does
/// `write_all` + `sync_data` (+ parent-directory fsync on creation); the
/// crash-fuzz harness substitutes a sink that dies mid-run at a seeded
/// byte offset.
pub trait GroupSink: Send + Sync {
    /// Appends `bytes` durably, all-or-torn-prefix. Must not return `Ok`
    /// before the bytes are synced.
    ///
    /// # Errors
    /// I/O errors from the underlying storage.
    fn append(&self, bytes: &[u8]) -> io::Result<()>;
}

impl<F> GroupSink for F
where
    F: Fn(&[u8]) -> io::Result<()> + Send + Sync,
{
    fn append(&self, bytes: &[u8]) -> io::Result<()> {
        self(bytes)
    }
}

/// Outcome of one completed flush, kept until every submission the flush
/// covered has observed it.
///
/// Flushes drain the whole pending buffer, so their ticket ranges are
/// contiguous and strictly increasing: this entry covers every ticket
/// after the previous entry's `upto`, up to its own.
#[derive(Debug)]
struct FlushOutcome {
    /// Last ticket this flush covered.
    upto: u64,
    /// Records the flush carried (made durable on success).
    records: u64,
    /// Submissions covered by this flush that have not yet resolved;
    /// the entry is dropped when this reaches zero.
    waiters: u64,
    /// The flush's I/O error; `None` means it synced.
    error: Option<String>,
}

/// Guarded state of one [`WriteGroup`].
#[derive(Debug, Default)]
struct GroupState {
    /// Encoded records awaiting the next flush.
    pending: Vec<u8>,
    /// Records in `pending`.
    pending_records: u64,
    /// Submissions whose records sit in `pending`.
    pending_submissions: u64,
    /// Ticket of the last submitted record.
    submitted: u64,
    /// A leader is currently flushing outside the lock.
    flushing: bool,
    /// Completed flushes not yet observed by all their submitters, in
    /// flush order (ascending `upto`). Per-flush outcomes — rather than
    /// global durable/failed watermarks — are what lets each ticket
    /// resolve against exactly the flush that drained it.
    outcomes: VecDeque<FlushOutcome>,
}

/// One shard log's group-commit gate. See the module docs for the
/// protocol; [`WriteGroup::submit`] is the whole public surface.
pub struct WriteGroup {
    sink: Box<dyn GroupSink>,
    state: Mutex<GroupState>,
    synced: Condvar,
}

impl std::fmt::Debug for WriteGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WriteGroup").finish_non_exhaustive()
    }
}

/// Outcome of one acknowledged submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupCommit {
    /// Records the flush that acknowledged this submission made durable —
    /// the realized group size (≥ the submission's own record count).
    pub group_records: u64,
    /// Syncs this submission waited on: always 1. The field exists so
    /// callers can aggregate syncs-per-insert without knowing the
    /// protocol.
    pub syncs: u64,
}

impl WriteGroup {
    /// Creates a group flushing through `sink`.
    pub fn new(sink: impl GroupSink + 'static) -> Self {
        WriteGroup {
            sink: Box::new(sink),
            state: Mutex::new(GroupState::default()),
            synced: Condvar::new(),
        }
    }

    /// Submits `records` and blocks until they are durable (or the flush
    /// covering them failed). Concurrent submissions coalesce: whichever
    /// caller finds no flush in progress drains *all* pending records with
    /// one write + one sync, and the rest are acknowledged without paying
    /// a sync of their own.
    ///
    /// An empty submission returns immediately with a zero-record commit.
    ///
    /// # Errors
    /// The I/O error of the failed flush that covered these records.
    pub fn submit(&self, records: &[WalRecord]) -> io::Result<GroupCommit> {
        if records.is_empty() {
            return Ok(GroupCommit {
                group_records: 0,
                syncs: 0,
            });
        }
        let mut state = self.state.lock().expect("write group lock");
        for rec in records {
            state.pending.extend_from_slice(&encode_record(rec));
        }
        state.pending_records += records.len() as u64;
        state.pending_submissions += 1;
        state.submitted += records.len() as u64;
        let ticket = state.submitted;
        loop {
            // Resolve against the flush that drained this ticket. Outcome
            // ranges are contiguous and ascending, and the covering entry
            // cannot have been dropped while this submission is still
            // unresolved (it counts among the entry's waiters), so the
            // first entry reaching `ticket` is the covering flush.
            if let Some(i) = state.outcomes.iter().position(|o| o.upto >= ticket) {
                let outcome = &mut state.outcomes[i];
                let result = match &outcome.error {
                    None => Ok(GroupCommit {
                        group_records: outcome.records,
                        syncs: 1,
                    }),
                    Some(why) => Err(io::Error::other(why.clone())),
                };
                outcome.waiters -= 1;
                if outcome.waiters == 0 {
                    state.outcomes.remove(i);
                }
                return result;
            }
            if !state.flushing {
                // Become leader: take everything pending and flush it with
                // the lock released so new writers keep enqueueing.
                state.flushing = true;
                let bytes = std::mem::take(&mut state.pending);
                let count = std::mem::replace(&mut state.pending_records, 0);
                let waiters = std::mem::replace(&mut state.pending_submissions, 0);
                let covers = state.submitted;
                drop(state);
                let started = std::time::Instant::now();
                let outcome = self.sink.append(&bytes);
                let sync_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                state = self.state.lock().expect("write group lock");
                state.flushing = false;
                if outcome.is_ok() {
                    use std::sync::atomic::Ordering::Relaxed;
                    let m = simq_obs::metrics::registry();
                    m.wal_appends.fetch_add(count, Relaxed);
                    m.wal_syncs.fetch_add(1, Relaxed);
                    m.wal_group_commits.fetch_add(1, Relaxed);
                    m.wal_sync_latency.record(sync_ns);
                    m.wal_last_sync_ns.store(sync_ns, Relaxed);
                }
                state.outcomes.push_back(FlushOutcome {
                    upto: covers,
                    records: count,
                    waiters,
                    error: outcome.err().map(|e| e.to_string()),
                });
                self.synced.notify_all();
            } else {
                state = self.synced.wait(state).expect("write group lock");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn rec(id: u64) -> WalRecord {
        WalRecord {
            id,
            name: format!("g{id}"),
            series: vec![id as f64; 4],
        }
    }

    /// A sink that counts flushes and collects bytes, optionally stalling
    /// inside `append` so concurrent submitters pile up behind the leader.
    struct SlowSink {
        bytes: Mutex<Vec<u8>>,
        flushes: AtomicU64,
        stall: std::time::Duration,
    }

    impl GroupSink for Arc<SlowSink> {
        fn append(&self, bytes: &[u8]) -> io::Result<()> {
            std::thread::sleep(self.stall);
            self.bytes.lock().unwrap().extend_from_slice(bytes);
            self.flushes.fetch_add(1, Ordering::SeqCst);
            Ok(())
        }
    }

    #[test]
    fn concurrent_submissions_coalesce_into_fewer_syncs() {
        let sink = Arc::new(SlowSink {
            bytes: Mutex::new(Vec::new()),
            flushes: AtomicU64::new(0),
            stall: std::time::Duration::from_millis(5),
        });
        let group = WriteGroup::new(Arc::clone(&sink));
        let writers = 8;
        // All writers release together: while the first leader sits in the
        // stalled sink, the rest enqueue and ride the next flush.
        let start = std::sync::Barrier::new(writers as usize);
        std::thread::scope(|scope| {
            for i in 0..writers {
                let (group, start) = (&group, &start);
                scope.spawn(move || {
                    start.wait();
                    group.submit(&[rec(i)]).expect("submit acks")
                });
            }
        });
        let flushes = sink.flushes.load(Ordering::SeqCst);
        assert!(flushes >= 1 && flushes < writers, "flushes = {flushes}");
        // Acknowledgment implies durability: every record is in the sink,
        // and the byte stream replays to exactly the submitted set.
        let replayed = crate::wal::replay(&sink.bytes.lock().unwrap());
        assert_eq!(replayed.records.len(), writers as usize);
        assert_eq!(replayed.dropped_bytes, 0);
        let mut ids: Vec<u64> = replayed.records.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..writers).collect::<Vec<_>>());
    }

    #[test]
    fn multi_record_submission_is_one_flush() {
        let sink = Arc::new(SlowSink {
            bytes: Mutex::new(Vec::new()),
            flushes: AtomicU64::new(0),
            stall: std::time::Duration::ZERO,
        });
        let group = WriteGroup::new(Arc::clone(&sink));
        let records: Vec<WalRecord> = (0..10).map(rec).collect();
        let commit = group.submit(&records).expect("submit acks");
        assert_eq!(sink.flushes.load(Ordering::SeqCst), 1);
        assert_eq!(commit.group_records, 10);
        assert_eq!(commit.syncs, 1);
    }

    #[test]
    fn failed_flush_errors_its_writers_and_heals_for_later_ones() {
        let attempts = Arc::new(AtomicU64::new(0));
        let seen = Arc::clone(&attempts);
        let stored: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        let kept = Arc::clone(&stored);
        let group = WriteGroup::new(move |bytes: &[u8]| {
            if seen.fetch_add(1, Ordering::SeqCst) == 0 {
                return Err(io::Error::other("disk gone"));
            }
            kept.lock().unwrap().extend_from_slice(bytes);
            Ok(())
        });
        let err = group.submit(&[rec(1)]).expect_err("first flush dies");
        assert!(err.to_string().contains("disk gone"));
        // The failed group's bytes are not replayed to later writers.
        let commit = group.submit(&[rec(2)]).expect("group healed");
        assert_eq!(commit.group_records, 1);
        let replayed = crate::wal::replay(&stored.lock().unwrap());
        assert_eq!(replayed.records.len(), 1);
        assert_eq!(replayed.records[0].id, 2);
    }

    /// Regression for a lost-write acknowledgment: a submission drained
    /// by a FAILED flush must get the error even when a LATER flush
    /// succeeds before it observes the outcome. Global durable/failed
    /// watermarks break here (the later flush advances durability past
    /// the lost ticket); per-flush outcomes pin it.
    #[test]
    fn failed_flush_followers_error_despite_a_later_successful_flush() {
        let calls = Arc::new(AtomicU64::new(0));
        let gate = Arc::new(AtomicU64::new(0));
        let stored: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        let group = WriteGroup::new({
            let (calls, gate, stored) =
                (Arc::clone(&calls), Arc::clone(&gate), Arc::clone(&stored));
            move |bytes: &[u8]| {
                let call = calls.fetch_add(1, Ordering::SeqCst) + 1;
                // Stall flushes 1 and 2 until the test releases them, so
                // followers pile up behind them deterministically.
                while gate.load(Ordering::SeqCst) < call {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                if call == 2 {
                    return Err(io::Error::other("disk gone"));
                }
                stored.lock().unwrap().extend_from_slice(bytes);
                Ok(())
            }
        });
        std::thread::scope(|scope| {
            // Flush 1 (succeeds): writer A leads and stalls in the sink.
            let a = scope.spawn(|| group.submit(&[rec(1)]));
            while calls.load(Ordering::SeqCst) < 1 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            // B and C enqueue behind the stalled flush; both will be
            // drained together by flush 2, which fails.
            let b = scope.spawn(|| group.submit(&[rec(2)]));
            let c = scope.spawn(|| group.submit(&[rec(3)]));
            std::thread::sleep(std::time::Duration::from_millis(50));
            gate.store(1, Ordering::SeqCst); // flush 1 returns Ok
            while calls.load(Ordering::SeqCst) < 2 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            // D enqueues while flush 2 is stalled; after flush 2 fails,
            // D leads flush 3, which succeeds — before B/C necessarily
            // observed their failure.
            let d = scope.spawn(|| group.submit(&[rec(4)]));
            std::thread::sleep(std::time::Duration::from_millis(50));
            gate.store(3, Ordering::SeqCst); // flush 2 fails, flush 3 ok
            assert!(a.join().unwrap().is_ok(), "flush 1 writer acks");
            let b = b.join().unwrap().expect_err("B was in the failed flush");
            let c = c.join().unwrap().expect_err("C was in the failed flush");
            assert!(b.to_string().contains("disk gone"));
            assert!(c.to_string().contains("disk gone"));
            assert!(d.join().unwrap().is_ok(), "flush 3 writer acks");
        });
        // Exactly the acknowledged records are durable: 1 and 4, never
        // the failed flush's 2 or 3.
        let replayed = crate::wal::replay(&stored.lock().unwrap());
        let mut ids: Vec<u64> = replayed.records.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 4]);
    }

    #[test]
    fn empty_submission_is_a_no_op() {
        let group = WriteGroup::new(|_: &[u8]| -> io::Result<()> {
            panic!("no flush for an empty submission")
        });
        let commit = group.submit(&[]).expect("empty ok");
        assert_eq!(commit.group_records, 0);
        assert_eq!(commit.syncs, 0);
    }
}
