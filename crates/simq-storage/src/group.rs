//! Group commit: coalescing concurrent WAL appends into shared syncs.
//!
//! A `sync_data` costs the same whether it makes one record durable or
//! fifty, so the write path's throughput ceiling is syncs, not bytes. A
//! [`WriteGroup`] amortizes that cost: writers enqueue encoded records
//! under a mutex, exactly one of them becomes the *leader* and flushes
//! everything pending with a single write + sync, and every writer whose
//! records made that flush is woken only after the sync returned — the
//! acknowledged-write guarantee is unchanged, acknowledgment just travels
//! in batches.
//!
//! The protocol (classic leader/follower, as in ARIES-style group commit):
//!
//! 1. `submit` appends the encoded records to the pending buffer and takes
//!    a ticket: the sequence number of its last record.
//! 2. If no flush is running, the caller elects itself leader, takes the
//!    whole pending buffer (its own records *plus* anything enqueued by
//!    writers that arrived while a previous flush ran), releases the lock,
//!    and performs one write + one sync through the [`GroupSink`].
//! 3. Followers wait on a condvar until the durable sequence reaches their
//!    ticket (ack) or a flush that covered their ticket fails (error).
//!
//! A failed flush poisons only the records it covered: their writers get
//! the error, the buffer is empty again, and later submissions start
//! fresh. This mirrors the file state — a torn group is a prefix on disk,
//! repaired at replay like any torn tail.

use crate::wal::{encode_record, WalRecord};
use std::io;
use std::sync::{Condvar, Mutex};

/// Destination of a group flush: one durable append of a byte run.
///
/// The production sink opens the shard's log file and does
/// `write_all` + `sync_data` (+ parent-directory fsync on creation); the
/// crash-fuzz harness substitutes a sink that dies mid-run at a seeded
/// byte offset.
pub trait GroupSink: Send + Sync {
    /// Appends `bytes` durably, all-or-torn-prefix. Must not return `Ok`
    /// before the bytes are synced.
    ///
    /// # Errors
    /// I/O errors from the underlying storage.
    fn append(&self, bytes: &[u8]) -> io::Result<()>;
}

impl<F> GroupSink for F
where
    F: Fn(&[u8]) -> io::Result<()> + Send + Sync,
{
    fn append(&self, bytes: &[u8]) -> io::Result<()> {
        self(bytes)
    }
}

/// Guarded state of one [`WriteGroup`].
#[derive(Debug, Default)]
struct GroupState {
    /// Encoded records awaiting the next flush.
    pending: Vec<u8>,
    /// Records in `pending`.
    pending_records: u64,
    /// Ticket of the last submitted record.
    submitted: u64,
    /// Tickets `<= durable` are synced and acknowledged.
    durable: u64,
    /// Tickets in `(durable, failed]` hit a failed flush.
    failed: u64,
    /// Error message of the most recent failed flush.
    error: Option<String>,
    /// A leader is currently flushing outside the lock.
    flushing: bool,
    /// Records made durable by the most recent successful flush.
    last_group: u64,
}

/// One shard log's group-commit gate. See the module docs for the
/// protocol; [`WriteGroup::submit`] is the whole public surface.
pub struct WriteGroup {
    sink: Box<dyn GroupSink>,
    state: Mutex<GroupState>,
    synced: Condvar,
}

impl std::fmt::Debug for WriteGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WriteGroup").finish_non_exhaustive()
    }
}

/// Outcome of one acknowledged submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupCommit {
    /// Records the flush that acknowledged this submission made durable —
    /// the realized group size (≥ the submission's own record count).
    pub group_records: u64,
    /// Syncs this submission waited on: always 1. The field exists so
    /// callers can aggregate syncs-per-insert without knowing the
    /// protocol.
    pub syncs: u64,
}

impl WriteGroup {
    /// Creates a group flushing through `sink`.
    pub fn new(sink: impl GroupSink + 'static) -> Self {
        WriteGroup {
            sink: Box::new(sink),
            state: Mutex::new(GroupState::default()),
            synced: Condvar::new(),
        }
    }

    /// Submits `records` and blocks until they are durable (or the flush
    /// covering them failed). Concurrent submissions coalesce: whichever
    /// caller finds no flush in progress drains *all* pending records with
    /// one write + one sync, and the rest are acknowledged without paying
    /// a sync of their own.
    ///
    /// An empty submission returns immediately with a zero-record commit.
    ///
    /// # Errors
    /// The I/O error of the failed flush that covered these records.
    pub fn submit(&self, records: &[WalRecord]) -> io::Result<GroupCommit> {
        if records.is_empty() {
            return Ok(GroupCommit {
                group_records: 0,
                syncs: 0,
            });
        }
        let mut state = self.state.lock().expect("write group lock");
        for rec in records {
            state.pending.extend_from_slice(&encode_record(rec));
        }
        state.pending_records += records.len() as u64;
        state.submitted += records.len() as u64;
        let ticket = state.submitted;
        loop {
            if state.durable >= ticket {
                return Ok(GroupCommit {
                    // `durable` advanced past our ticket in one flush whose
                    // size the leader recorded in `last_group`; report it.
                    group_records: state.last_group,
                    syncs: 1,
                });
            }
            if state.failed >= ticket {
                let why = state.error.clone().unwrap_or_default();
                return Err(io::Error::other(why));
            }
            if !state.flushing {
                // Become leader: take everything pending and flush it with
                // the lock released so new writers keep enqueueing.
                state.flushing = true;
                let bytes = std::mem::take(&mut state.pending);
                let count = std::mem::replace(&mut state.pending_records, 0);
                let covers = state.submitted;
                drop(state);
                let started = std::time::Instant::now();
                let outcome = self.sink.append(&bytes);
                let sync_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                state = self.state.lock().expect("write group lock");
                state.flushing = false;
                match outcome {
                    Ok(()) => {
                        state.durable = covers;
                        state.last_group = count;
                        use std::sync::atomic::Ordering::Relaxed;
                        let m = simq_obs::metrics::registry();
                        m.wal_appends.fetch_add(count, Relaxed);
                        m.wal_syncs.fetch_add(1, Relaxed);
                        m.wal_group_commits.fetch_add(1, Relaxed);
                        m.wal_sync_latency.record(sync_ns);
                        m.wal_last_sync_ns.store(sync_ns, Relaxed);
                    }
                    Err(e) => {
                        state.failed = covers;
                        state.error = Some(e.to_string());
                    }
                }
                self.synced.notify_all();
            } else {
                state = self.synced.wait(state).expect("write group lock");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn rec(id: u64) -> WalRecord {
        WalRecord {
            id,
            name: format!("g{id}"),
            series: vec![id as f64; 4],
        }
    }

    /// A sink that counts flushes and collects bytes, optionally stalling
    /// inside `append` so concurrent submitters pile up behind the leader.
    struct SlowSink {
        bytes: Mutex<Vec<u8>>,
        flushes: AtomicU64,
        stall: std::time::Duration,
    }

    impl GroupSink for Arc<SlowSink> {
        fn append(&self, bytes: &[u8]) -> io::Result<()> {
            std::thread::sleep(self.stall);
            self.bytes.lock().unwrap().extend_from_slice(bytes);
            self.flushes.fetch_add(1, Ordering::SeqCst);
            Ok(())
        }
    }

    #[test]
    fn concurrent_submissions_coalesce_into_fewer_syncs() {
        let sink = Arc::new(SlowSink {
            bytes: Mutex::new(Vec::new()),
            flushes: AtomicU64::new(0),
            stall: std::time::Duration::from_millis(5),
        });
        let group = WriteGroup::new(Arc::clone(&sink));
        let writers = 8;
        // All writers release together: while the first leader sits in the
        // stalled sink, the rest enqueue and ride the next flush.
        let start = std::sync::Barrier::new(writers as usize);
        std::thread::scope(|scope| {
            for i in 0..writers {
                let (group, start) = (&group, &start);
                scope.spawn(move || {
                    start.wait();
                    group.submit(&[rec(i)]).expect("submit acks")
                });
            }
        });
        let flushes = sink.flushes.load(Ordering::SeqCst);
        assert!(flushes >= 1 && flushes < writers, "flushes = {flushes}");
        // Acknowledgment implies durability: every record is in the sink,
        // and the byte stream replays to exactly the submitted set.
        let replayed = crate::wal::replay(&sink.bytes.lock().unwrap());
        assert_eq!(replayed.records.len(), writers as usize);
        assert_eq!(replayed.dropped_bytes, 0);
        let mut ids: Vec<u64> = replayed.records.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..writers).collect::<Vec<_>>());
    }

    #[test]
    fn multi_record_submission_is_one_flush() {
        let sink = Arc::new(SlowSink {
            bytes: Mutex::new(Vec::new()),
            flushes: AtomicU64::new(0),
            stall: std::time::Duration::ZERO,
        });
        let group = WriteGroup::new(Arc::clone(&sink));
        let records: Vec<WalRecord> = (0..10).map(rec).collect();
        let commit = group.submit(&records).expect("submit acks");
        assert_eq!(sink.flushes.load(Ordering::SeqCst), 1);
        assert_eq!(commit.group_records, 10);
        assert_eq!(commit.syncs, 1);
    }

    #[test]
    fn failed_flush_errors_its_writers_and_heals_for_later_ones() {
        let attempts = Arc::new(AtomicU64::new(0));
        let seen = Arc::clone(&attempts);
        let stored: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        let kept = Arc::clone(&stored);
        let group = WriteGroup::new(move |bytes: &[u8]| {
            if seen.fetch_add(1, Ordering::SeqCst) == 0 {
                return Err(io::Error::other("disk gone"));
            }
            kept.lock().unwrap().extend_from_slice(bytes);
            Ok(())
        });
        let err = group.submit(&[rec(1)]).expect_err("first flush dies");
        assert!(err.to_string().contains("disk gone"));
        // The failed group's bytes are not replayed to later writers.
        let commit = group.submit(&[rec(2)]).expect("group healed");
        assert_eq!(commit.group_records, 1);
        let replayed = crate::wal::replay(&stored.lock().unwrap());
        assert_eq!(replayed.records.len(), 1);
        assert_eq!(replayed.records[0].id, 2);
    }

    #[test]
    fn empty_submission_is_a_no_op() {
        let group = WriteGroup::new(|_: &[u8]| -> io::Result<()> {
            panic!("no flush for an empty submission")
        });
        let commit = group.submit(&[]).expect("empty ok");
        assert_eq!(commit.group_records, 0);
        assert_eq!(commit.syncs, 0);
    }
}
