//! # simq-storage — relations and scan baselines
//!
//! In-memory unary relations of time series, stored simultaneously in the
//! time domain (raw), the frequency domain (normal-form spectra — what the
//! paper's improved sequential scan reads), and the feature space (index
//! points).
//!
//! * [`relation`] — [`SeriesRelation`]: rows, feature extraction on
//!   insert, index construction (bulk-loaded or incremental).
//! * [`scan`] — sequential-scan query evaluation with and without early
//!   abandoning (methods *a*/*b* of the paper's Table 1).
//! * [`multi`] — batched scans: one pass over the relation serving a whole
//!   batch of range/kNN queries, each bitwise identical to its individual
//!   scan.
//! * [`persist`] — a tiny dependency-free text format with exact `f64`
//!   round-tripping (the import/export path).
//! * [`pages`] — the checksummed fixed-size page layer under snapshots.
//! * [`snapshot`] — versioned binary snapshots of whole databases:
//!   relations (sharded or not), precomputed spectra and serialized
//!   R*-trees, so cold starts skip feature extraction and index
//!   bulk-loading.
//! * [`shard`] — [`ShardedRelation`]: the row space hash-partitioned by
//!   row id into independent shards (each an ordinary [`SeriesRelation`]),
//!   plus sharded scan entry points whose merged results are bitwise
//!   identical to the unsharded scans.
//! * [`sig`] — the quantized filter tier: [`SignatureArray`] (contiguous
//!   reduced-precision leading spectrum coefficients per relation/shard)
//!   and [`FilterProbe`] (a no-false-dismissal lower bound on the
//!   verification distance, scanned before full verification).
//! * [`wal`] — checksummed, length-prefixed write-ahead-log records with
//!   longest-valid-prefix replay and torn-tail repair.
//! * [`group`] — [`WriteGroup`]: leader/follower group commit coalescing
//!   concurrent WAL appends into one write + one sync per batch, with
//!   acknowledgment only after the group's sync returns.
//! * [`durable`] — the durable directory store: per-shard checkpoint
//!   files under an atomically committed manifest, WAL tails on top
//!   (snapshot = checkpoint, WAL = tail), and the injectable
//!   [`FailingStorage`] the crash-fuzz harness kills at seeded byte
//!   offsets.

#![warn(missing_docs)]

pub mod durable;
pub mod group;
pub mod multi;
pub mod pages;
pub mod persist;
pub mod relation;
pub mod scan;
pub mod shard;
pub mod sig;
pub mod snapshot;
pub mod wal;

pub use durable::{
    CheckpointReport, CheckpointSource, DurableDir, DurableError, FailingStorage, Manifest,
    ManifestEntry, ReplayReport,
};
pub use group::{GroupCommit, GroupSink, WriteGroup};
pub use multi::{
    scan_knn_multi, scan_range_multi, MultiScanKnnQuery, MultiScanRangeQuery, MultiScanStats,
};
pub use relation::{SeriesRelation, SeriesRow};
pub use scan::{
    scan_all_pairs, scan_all_pairs_parallel, scan_all_pairs_two, scan_all_pairs_two_parallel,
    scan_knn, scan_knn_parallel, scan_range, scan_range_parallel, ParallelScanStats, ScanHit,
    ScanStats,
};
pub use shard::{
    scan_all_pairs_two_sharded, scan_knn_sharded, scan_range_sharded, ShardLayout, ShardedRelation,
    ShardedScanStats,
};
pub use sig::{FilterProbe, SignatureArray, SIG_COEFFS};
pub use snapshot::{SnapshotEntry, SnapshotError, SnapshotRelation, SnapshotSource};
pub use wal::{WalRecord, WalReplay};
