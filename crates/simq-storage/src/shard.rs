//! Sharded relations: the row space partitioned across independent
//! shards, each with its own series store (and, one level up, its own
//! R*-tree).
//!
//! A [`ShardedRelation`] splits a relation's rows by row id under a
//! [`ShardLayout`]. Each shard is an ordinary [`SeriesRelation`], so
//! everything that works on a relation — feature extraction, scans,
//! index bulk-loading — works per shard unchanged. What sharding buys:
//!
//! * **Insert locality** — an insert touches exactly one shard's store
//!   and one shard's (small) R*-tree instead of one monolithic tree.
//! * **Natural parallel work units** — range/kNN/join queries fan out
//!   one task per shard and recombine through the same deterministic
//!   merge rules the parallel traversals use, so sharded results are
//!   bitwise identical to unsharded execution (pinned by
//!   `tests/shard_equivalence.rs`). One caveat: sharding preserves rows'
//!   per-shard relative order but not a global *insertion* order, so the
//!   equivalence is stated against the relation's rows in id order —
//!   identical for every sequentially built relation; a relation
//!   assembled with out-of-order explicit-id inserts may see asymmetric
//!   pair scans report the other (equally valid) orientation of a tied
//!   pair.
//!
//! The sharded scan entry points here ([`scan_range_sharded`],
//! [`scan_knn_sharded`], [`scan_all_pairs_two_sharded`]) are the scan
//! fallbacks of query execution over sharded relations; the index-side
//! fan-out lives in `simq_index::shard`.

use crate::relation::{SeriesRelation, SeriesRow};
use crate::scan::{
    scan_all_pairs_rows_parallel, scan_knn, scan_range, transformed_distance_sq, PairList,
    ParallelScanStats, ScanHit, ScanStats,
};
use simq_dsp::complex::Complex;
use simq_index::{RTree, RTreeConfig};
use simq_series::error::SeriesError;
use simq_series::features::FeatureScheme;
use simq_series::transform::SeriesTransform;

/// How row ids map to shards.
///
/// The layout is a pure function of the row id and the shard count, so a
/// persisted sharded relation can be reconstructed from its flattened
/// rows without storing a per-row shard assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardLayout {
    /// Row id modulo the shard count — the default: sequential inserts
    /// round-robin across shards, which keeps shard sizes balanced for
    /// both dense and gappy id spaces.
    Hash {
        /// Number of shards (≥ 1).
        shards: usize,
    },
}

impl ShardLayout {
    /// Number of shards the layout produces.
    pub fn shard_count(&self) -> usize {
        match self {
            ShardLayout::Hash { shards } => (*shards).max(1),
        }
    }

    /// The shard a row id belongs to.
    pub fn shard_of(&self, id: u64) -> usize {
        match self {
            ShardLayout::Hash { shards } => (id % (*shards).max(1) as u64) as usize,
        }
    }
}

impl std::fmt::Display for ShardLayout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardLayout::Hash { shards } => write!(f, "hash(id) mod {shards}"),
        }
    }
}

/// A relation partitioned into independent shards by row id.
///
/// All shards share the relation's name, series length and feature
/// scheme; each shard owns its rows (raw series, statistics, index
/// points, normal-form spectra). Row ids are globally unique — the
/// layout routes every id to exactly one shard.
#[derive(Debug, Clone)]
pub struct ShardedRelation {
    name: String,
    series_len: usize,
    scheme: FeatureScheme,
    layout: ShardLayout,
    shards: Vec<SeriesRelation>,
    /// Id the next [`ShardedRelation::insert`] will assign.
    next_id: u64,
}

impl ShardedRelation {
    /// An empty sharded relation with `shards` shards.
    ///
    /// # Panics
    /// Panics if `shards` is 0 or `series_len` cannot support the scheme
    /// (same contract as [`SeriesRelation::new`]).
    pub fn new(
        name: impl Into<String>,
        series_len: usize,
        scheme: FeatureScheme,
        shards: usize,
    ) -> Self {
        assert!(shards >= 1, "a sharded relation needs at least one shard");
        let name = name.into();
        let shards_vec = (0..shards)
            .map(|_| SeriesRelation::new(name.clone(), series_len, scheme.clone()))
            .collect();
        ShardedRelation {
            name,
            series_len,
            scheme,
            layout: ShardLayout::Hash { shards },
            shards: shards_vec,
            next_id: 0,
        }
    }

    /// Re-partitions an existing relation into `shards` shards. Rows move
    /// bit-for-bit (no feature re-extraction), so every query answer over
    /// the sharded form is identical to the unsharded one.
    pub fn from_single(relation: SeriesRelation, shards: usize) -> Self {
        let name = relation.name().to_string();
        let series_len = relation.series_len();
        let scheme = relation.scheme().clone();
        Self::from_parts(
            name,
            series_len,
            scheme,
            ShardLayout::Hash {
                shards: shards.max(1),
            },
            relation.into_rows(),
        )
    }

    /// Rebuilds a sharded relation from already-validated rows (the
    /// snapshot restore path and [`ShardedRelation::from_single`]): rows
    /// are routed by the layout, preserving their relative order within
    /// each shard.
    pub(crate) fn from_parts(
        name: String,
        series_len: usize,
        scheme: FeatureScheme,
        layout: ShardLayout,
        rows: Vec<SeriesRow>,
    ) -> Self {
        let count = layout.shard_count();
        let mut per_shard: Vec<Vec<SeriesRow>> = (0..count).map(|_| Vec::new()).collect();
        let mut next_id = 0u64;
        for row in rows {
            next_id = next_id.max(row.id + 1);
            per_shard[layout.shard_of(row.id)].push(row);
        }
        let shards = per_shard
            .into_iter()
            .map(|rows| {
                SeriesRelation::from_validated_parts(name.clone(), series_len, scheme.clone(), rows)
            })
            .collect();
        ShardedRelation {
            name,
            series_len,
            scheme,
            layout,
            shards,
            next_id,
        }
    }

    /// Reassembles a sharded relation from already-routed shard stores
    /// (the durable-open path: each shard was persisted separately, so no
    /// rows need to move). The caller has verified routing; this
    /// constructor validates the shared header fields.
    pub(crate) fn from_shard_stores(
        name: String,
        layout: ShardLayout,
        stores: Vec<SeriesRelation>,
    ) -> Result<Self, String> {
        if stores.len() != layout.shard_count() {
            return Err(format!(
                "{} shard stores for a {}-shard layout",
                stores.len(),
                layout.shard_count()
            ));
        }
        let first = stores.first().expect("layouts have at least one shard");
        let (series_len, scheme) = (first.series_len(), first.scheme().clone());
        for s in &stores {
            if s.name() != name || s.series_len() != series_len || s.scheme() != &scheme {
                return Err(format!(
                    "shard stores of {name:?} disagree on name, series length or scheme"
                ));
            }
        }
        let next_id = stores
            .iter()
            .map(SeriesRelation::next_id)
            .max()
            .unwrap_or(0);
        Ok(ShardedRelation {
            name,
            series_len,
            scheme,
            layout,
            shards: stores,
            next_id,
        })
    }

    /// Merges the shards back into one relation, rows ordered by id.
    pub fn to_single(&self) -> SeriesRelation {
        let mut rows: Vec<SeriesRow> = self.shards.iter().flat_map(|s| s.rows().cloned()).collect();
        rows.sort_by_key(|r| r.id);
        SeriesRelation::from_validated_parts(
            self.name.clone(),
            self.series_len,
            self.scheme.clone(),
            rows,
        )
    }

    /// Consumes the sharded relation, merging the shards back into one
    /// relation with rows ordered by id — the re-partitioning path
    /// ([`crate::shard`] → different shard count) moves every row
    /// bit-for-bit without cloning raw series or spectra.
    pub fn into_single(self) -> SeriesRelation {
        let mut rows: Vec<SeriesRow> = self
            .shards
            .into_iter()
            .flat_map(SeriesRelation::into_rows)
            .collect();
        rows.sort_by_key(|r| r.id);
        SeriesRelation::from_validated_parts(self.name, self.series_len, self.scheme, rows)
    }

    /// The id the next [`ShardedRelation::insert`] will assign.
    pub fn next_id(&self) -> u64 {
        self.next_id
    }

    /// Relation name (shared by every shard).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Length every stored series must have.
    pub fn series_len(&self) -> usize {
        self.series_len
    }

    /// The feature scheme rows are extracted under.
    pub fn scheme(&self) -> &FeatureScheme {
        &self.scheme
    }

    /// The id → shard mapping.
    pub fn layout(&self) -> ShardLayout {
        self.layout
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shards, in shard order.
    pub fn shards(&self) -> &[SeriesRelation] {
        &self.shards
    }

    /// One shard's store.
    pub fn shard(&self, i: usize) -> &SeriesRelation {
        &self.shards[i]
    }

    /// The shards, mutably — the concurrent write path's entry point: the
    /// slice is split into disjoint `&mut` borrows so each shard's owning
    /// writer thread applies its routed rows independently. Callers must
    /// respect the id → shard routing of [`ShardedRelation::layout`] and
    /// follow up with [`ShardedRelation::note_inserted`] so id assignment
    /// stays consistent.
    pub fn shards_mut(&mut self) -> &mut [SeriesRelation] {
        &mut self.shards
    }

    /// Records that rows up to `id` were inserted directly into the shard
    /// stores (via [`ShardedRelation::shards_mut`]), advancing the next-id
    /// watermark exactly as the routed insert would have.
    pub fn note_inserted(&mut self, id: u64) {
        self.next_id = self.next_id.max(id + 1);
    }

    /// Total rows across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(SeriesRelation::len).sum()
    }

    /// True when no shard has any rows.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(SeriesRelation::is_empty)
    }

    /// Rows per shard, in shard order (the `\relations` listing).
    pub fn shard_row_counts(&self) -> Vec<usize> {
        self.shards.iter().map(SeriesRelation::len).collect()
    }

    /// Inserts a series; returns its row id. Exactly one shard's store is
    /// touched — the insert-locality property sharding exists for.
    ///
    /// # Errors
    /// As [`SeriesRelation::insert`].
    pub fn insert(
        &mut self,
        name: impl Into<String>,
        series: Vec<f64>,
    ) -> Result<u64, SeriesError> {
        let id = self.next_id;
        self.insert_with_id(id, name, series)
    }

    /// Inserts a series under an explicit row id (the restore path).
    ///
    /// # Errors
    /// As [`SeriesRelation::insert_with_id`].
    pub fn insert_with_id(
        &mut self,
        id: u64,
        name: impl Into<String>,
        series: Vec<f64>,
    ) -> Result<u64, SeriesError> {
        let shard = self.layout.shard_of(id);
        let id = self.shards[shard].insert_with_id(id, name, series)?;
        self.next_id = self.next_id.max(id + 1);
        Ok(id)
    }

    /// The shard a row id routes to.
    pub fn shard_of(&self, id: u64) -> usize {
        self.layout.shard_of(id)
    }

    /// Row access by id — one shard lookup.
    pub fn row(&self, id: u64) -> Option<&SeriesRow> {
        self.shards[self.layout.shard_of(id)].row(id)
    }

    /// The quantized filter-tier signature of a row (routed through the
    /// shard layout, same O(1) lookup as [`ShardedRelation::row`]).
    pub fn signature(&self, id: u64) -> Option<&[f32]> {
        self.shards[self.layout.shard_of(id)].signature(id)
    }

    /// Iterates rows shard-major (shard 0's rows in insertion order, then
    /// shard 1's, …). Use [`ShardedRelation::rows_by_id`] when id order
    /// matters.
    pub fn rows(&self) -> impl Iterator<Item = &SeriesRow> {
        self.shards.iter().flat_map(|s| s.rows())
    }

    /// All rows, sorted by id — the iteration order of the equivalent
    /// unsharded relation (sequentially built relations store rows in id
    /// order), used by the pair scans so sharded join output is
    /// bitwise identical to unsharded.
    pub fn rows_by_id(&self) -> Vec<&SeriesRow> {
        let mut rows: Vec<&SeriesRow> = self.rows().collect();
        rows.sort_by_key(|r| r.id);
        rows
    }

    /// Bulk-loads one R*-tree per shard over the shard's feature points.
    pub fn build_indexes(&self, config: RTreeConfig) -> Vec<RTree> {
        self.shards
            .iter()
            .map(|s| s.build_index(config.clone()))
            .collect()
    }
}

/// Work counters of one sharded scan: merged totals plus each shard's
/// share (empty for the pair scans, whose row pairs cross shards).
#[derive(Debug, Clone, Default)]
pub struct ShardedScanStats {
    /// Totals across all shards — comparable with the unsharded counters.
    pub merged: ScanStats,
    /// One entry per shard.
    pub per_shard: Vec<ScanStats>,
}

impl ShardedScanStats {
    fn from_shards(per_shard: Vec<ScanStats>) -> Self {
        let mut merged = ScanStats::default();
        for s in &per_shard {
            merged.rows_scanned += s.rows_scanned;
            merged.coefficients_compared += s.coefficients_compared;
            merged.early_abandoned += s.early_abandoned;
        }
        ShardedScanStats { merged, per_shard }
    }
}

/// Runs `work(shard_index)` for every shard, on up to `threads` worker
/// threads (shard-level parallelism: each shard is one task). Results
/// come back in shard order regardless of schedule.
fn for_each_shard<T: Send>(
    shard_count: usize,
    threads: usize,
    work: &(dyn Fn(usize) -> T + Sync),
) -> Vec<T> {
    let workers = threads.max(1).min(shard_count.max(1));
    if workers <= 1 || shard_count <= 1 {
        return (0..shard_count).map(work).collect();
    }
    use std::sync::atomic::{AtomicUsize, Ordering};
    let cursor = AtomicUsize::new(0);
    let mut out: Vec<Option<T>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                scope.spawn(move || {
                    let mut produced: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= shard_count {
                            break;
                        }
                        produced.push((i, work(i)));
                    }
                    produced
                })
            })
            .collect();
        let mut slots: Vec<Option<T>> = (0..shard_count).map(|_| None).collect();
        for h in handles {
            for (i, v) in h.join().expect("shard worker panicked") {
                slots[i] = Some(v);
            }
        }
        slots
    });
    out.drain(..)
        .map(|v| v.expect("every shard produced a result"))
        .collect()
}

/// Range query over a sharded relation: every shard is scanned by the
/// exact serial code ([`scan_range`]) and the hit lists concatenate in
/// shard order. With `threads > 1` shards scan in parallel (one task per
/// shard); the result is identical either way.
///
/// # Errors
/// Transformation-domain errors.
pub fn scan_range_sharded(
    relation: &ShardedRelation,
    transform: &SeriesTransform,
    query_spectrum: &[Complex],
    eps: f64,
    early_abandon: bool,
    threads: usize,
) -> Result<(Vec<ScanHit>, ShardedScanStats), SeriesError> {
    // Surface transformation errors once, before fanning out.
    let n = relation.series_len();
    transform.action(n, n.saturating_sub(1))?;
    let results = for_each_shard(relation.shard_count(), threads, &|i| {
        scan_range(
            relation.shard(i),
            transform,
            query_spectrum,
            eps,
            early_abandon,
        )
    });
    let mut hits = Vec::new();
    let mut per_shard = Vec::with_capacity(results.len());
    for r in results {
        let (h, s) = r?;
        hits.extend(h);
        per_shard.push(s);
    }
    Ok((hits, ShardedScanStats::from_shards(per_shard)))
}

/// kNN query over a sharded relation.
///
/// Serially, each shard runs the exact [`scan_knn`] and the per-shard
/// top-`k` lists merge by `(distance, id)` — any global top-`k` row is in
/// its shard's top-`k`, so the merge loses nothing. With `threads > 1`
/// the shards scan concurrently under one shared atomic bound on the
/// `k`-th best distance (the same mechanism as
/// [`scan_knn_parallel`](crate::scan::scan_knn_parallel)), abandoning
/// rows that provably cannot enter the answer. Both paths return results
/// bitwise identical to the unsharded scan.
///
/// # Errors
/// Transformation-domain errors.
pub fn scan_knn_sharded(
    relation: &ShardedRelation,
    transform: &SeriesTransform,
    query_spectrum: &[Complex],
    k: usize,
    threads: usize,
) -> Result<(Vec<ScanHit>, ShardedScanStats), SeriesError> {
    use simq_index::parallel::AtomicF64Min;

    let n = relation.series_len();
    let action = transform.action(n, n.saturating_sub(1))?;
    if k == 0 {
        return Ok((Vec::new(), ShardedScanStats::default()));
    }
    let workers = threads.max(1).min(relation.shard_count());
    let results: Vec<Result<(Vec<ScanHit>, ScanStats), SeriesError>> = if workers <= 1 {
        (0..relation.shard_count())
            .map(|i| scan_knn(relation.shard(i), transform, query_spectrum, k))
            .collect()
    } else {
        // Shared upper bound on the k-th smallest squared distance.
        let global_kth_sq = AtomicF64Min::new(f64::INFINITY);
        let action = &action;
        let global = &global_kth_sq;
        for_each_shard(relation.shard_count(), threads, &|i| {
            let mut stats = ScanStats::default();
            let mut kept: Vec<ScanHit> = Vec::new();
            let mut local: std::collections::BinaryHeap<u64> =
                std::collections::BinaryHeap::with_capacity(k + 1);
            for row in relation.shard(i).rows() {
                stats.rows_scanned += 1;
                let bound = global.get();
                let limit = bound.is_finite().then_some(bound);
                let (d_sq, abandoned) = transformed_distance_sq(
                    &row.features.spectrum,
                    &action.multipliers,
                    query_spectrum,
                    limit,
                    &mut stats.coefficients_compared,
                );
                if abandoned {
                    stats.early_abandoned += 1;
                    continue;
                }
                // Keep only rows not provably outside this shard's top-k
                // (ties at the k-th distance included — the final
                // (distance, id) sort may prefer them): any global top-k
                // row is in its shard's top-k, so the merge loses
                // nothing, and `kept` stays O(k + improvements) instead
                // of O(rows).
                if local.len() < k || d_sq.to_bits() <= *local.peek().expect("k > 0") {
                    kept.push(ScanHit {
                        id: row.id,
                        distance: d_sq.sqrt(),
                    });
                }
                if local.len() < k {
                    local.push(d_sq.to_bits());
                } else if d_sq.to_bits() < *local.peek().expect("k > 0") {
                    local.pop();
                    local.push(d_sq.to_bits());
                }
                if local.len() == k {
                    global.fetch_min(f64::from_bits(*local.peek().expect("k > 0")));
                }
            }
            Ok((kept, stats))
        })
    };
    let mut all = Vec::new();
    let mut per_shard = Vec::with_capacity(results.len());
    for r in results {
        let (kept, s) = r?;
        all.extend(kept);
        per_shard.push(s);
    }
    all.sort_by(|a, b| {
        a.distance
            .partial_cmp(&b.distance)
            .expect("finite distances")
            .then(a.id.cmp(&b.id))
    });
    all.truncate(k);
    Ok((all, ShardedScanStats::from_shards(per_shard)))
}

/// All-pairs scan over a sharded relation: the rows of every shard,
/// flattened in id order (the scan order of every sequentially built
/// relation), run through the exact pair-scan machinery — output and
/// distances are bitwise identical to
/// [`crate::scan::scan_all_pairs_two`] on the merged relation. Pair work
/// crosses shards, so parallelism is row-chunked (not shard-fanned) and
/// the stats carry per-worker-thread shares, as for the unsharded
/// parallel scan.
///
/// # Errors
/// Transformation-domain errors.
pub fn scan_all_pairs_two_sharded(
    relation: &ShardedRelation,
    left: &SeriesTransform,
    right: &SeriesTransform,
    eps: f64,
    early_abandon: bool,
    threads: usize,
) -> Result<(PairList, ParallelScanStats), SeriesError> {
    let rows = relation.rows_by_id();
    scan_all_pairs_rows_parallel(
        &rows,
        relation.series_len(),
        left,
        right,
        eps,
        early_abandon,
        threads,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::{
        scan_all_pairs_two, scan_knn as scan_knn_single, scan_range as scan_range_single,
    };
    use simq_series::features::FeatureScheme;

    fn single_relation(rows: usize) -> SeriesRelation {
        let mut rel = SeriesRelation::new("r", 64, FeatureScheme::paper_default());
        for i in 0..rows {
            let series: Vec<f64> = (0..64)
                .map(|t| {
                    20.0 + (t as f64 * (0.1 + i as f64 * 0.013)).sin() * 4.0
                        + (t as f64 * 0.31).cos() * (i % 5) as f64
                })
                .collect();
            rel.insert(format!("S{i}"), series).unwrap();
        }
        rel
    }

    #[test]
    fn partitioning_routes_every_row_once() {
        let rel = single_relation(53);
        let sharded = ShardedRelation::from_single(rel.clone(), 4);
        assert_eq!(sharded.len(), 53);
        assert_eq!(sharded.shard_count(), 4);
        for id in 0..53u64 {
            let row = sharded.row(id).expect("row routed");
            assert_eq!(row.id, id);
            assert_eq!(row.name, format!("S{id}"));
            assert_eq!(sharded.shard_of(id), (id % 4) as usize);
        }
        // Shard sizes are balanced by the modulo layout.
        let counts = sharded.shard_row_counts();
        assert_eq!(counts.iter().sum::<usize>(), 53);
        assert!(counts.iter().all(|&c| (13..=14).contains(&c)));
    }

    #[test]
    fn roundtrip_to_single_is_bitwise() {
        let rel = single_relation(37);
        let sharded = ShardedRelation::from_single(rel.clone(), 3);
        let back = sharded.to_single();
        assert_eq!(back.len(), rel.len());
        for (a, b) in rel.rows().zip(back.rows()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.name, b.name);
            let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&a.raw), bits(&b.raw));
            assert_eq!(bits(&a.features.point), bits(&b.features.point));
        }
    }

    #[test]
    fn inserts_route_and_ids_stay_global() {
        let mut sharded = ShardedRelation::new("r", 64, FeatureScheme::paper_default(), 3);
        for i in 0..10 {
            let series: Vec<f64> = (0..64)
                .map(|t| (t as f64 * 0.2 + i as f64).sin() * 3.0 + 30.0)
                .collect();
            let id = sharded.insert(format!("S{i}"), series).unwrap();
            assert_eq!(id, i as u64);
        }
        assert_eq!(sharded.len(), 10);
        assert_eq!(sharded.shard_row_counts(), vec![4, 3, 3]);
        // Duplicate explicit ids are rejected by the owning shard.
        let series: Vec<f64> = (0..64).map(|t| (t as f64 * 0.3).cos() + 10.0).collect();
        assert!(matches!(
            sharded.insert_with_id(3, "dup", series),
            Err(SeriesError::DuplicateRowId(3))
        ));
    }

    #[test]
    fn sharded_range_scan_matches_single() {
        let rel = single_relation(80);
        let q = rel.row(7).unwrap().features.spectrum.clone();
        let t = SeriesTransform::MovingAverage { window: 5 };
        let q_spec = t.apply_spectrum(&q, 64).unwrap();
        let sharded = ShardedRelation::from_single(rel.clone(), 4);
        for eps in [0.3, 2.0, 20.0] {
            let (mut want, want_stats) = scan_range_single(&rel, &t, &q_spec, eps, true).unwrap();
            for threads in [1, 4] {
                let (mut got, stats) =
                    scan_range_sharded(&sharded, &t, &q_spec, eps, true, threads).unwrap();
                want.sort_by_key(|h| h.id);
                got.sort_by_key(|h| h.id);
                assert_eq!(got.len(), want.len(), "eps {eps} threads {threads}");
                for (a, b) in got.iter().zip(&want) {
                    assert_eq!(a.id, b.id);
                    assert_eq!(a.distance.to_bits(), b.distance.to_bits());
                }
                assert_eq!(stats.merged.rows_scanned, want_stats.rows_scanned);
                assert_eq!(stats.per_shard.len(), 4);
            }
        }
    }

    #[test]
    fn sharded_knn_scan_matches_single() {
        let rel = single_relation(90);
        let q = rel.row(11).unwrap().features.spectrum.clone();
        let sharded = ShardedRelation::from_single(rel.clone(), 3);
        for k in [1, 7, 90, 200] {
            let (want, _) = scan_knn_single(&rel, &SeriesTransform::Identity, &q, k).unwrap();
            for threads in [1, 4] {
                let (got, _) =
                    scan_knn_sharded(&sharded, &SeriesTransform::Identity, &q, k, threads).unwrap();
                assert_eq!(got.len(), want.len(), "k {k} threads {threads}");
                for (a, b) in got.iter().zip(&want) {
                    assert_eq!(a.id, b.id, "k {k} threads {threads}");
                    assert_eq!(a.distance.to_bits(), b.distance.to_bits());
                }
            }
        }
    }

    #[test]
    fn sharded_pair_scan_matches_single() {
        let rel = single_relation(40);
        let left = SeriesTransform::MovingAverage { window: 5 };
        let right = SeriesTransform::Identity;
        let sharded = ShardedRelation::from_single(rel.clone(), 4);
        for (l, r) in [(&left, &left), (&left, &right)] {
            let (want, _) = scan_all_pairs_two(&rel, l, r, 6.0, true).unwrap();
            for threads in [1, 3] {
                let (got, _) =
                    scan_all_pairs_two_sharded(&sharded, l, r, 6.0, true, threads).unwrap();
                assert_eq!(got.len(), want.len(), "threads {threads}");
                for (a, b) in got.iter().zip(&want) {
                    assert_eq!((a.0, a.1), (b.0, b.1));
                    assert_eq!(a.2.to_bits(), b.2.to_bits());
                }
            }
        }
    }

    #[test]
    fn per_shard_indexes_cover_all_rows() {
        let rel = single_relation(60);
        let sharded = ShardedRelation::from_single(rel, 4);
        let trees = sharded.build_indexes(RTreeConfig::default());
        assert_eq!(trees.len(), 4);
        let mut ids: Vec<u64> = trees
            .iter()
            .flat_map(|t| t.items().into_iter().map(|(_, id)| id))
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..60).collect::<Vec<u64>>());
        for (i, tree) in trees.iter().enumerate() {
            assert_eq!(tree.len(), sharded.shard(i).len());
        }
    }
}
