//! The per-shard write-ahead log under the paged snapshots.
//!
//! Snapshots are *checkpoints*: complete, checksummed images of a relation
//! (or one shard of it). The WAL is the *tail*: every acknowledged insert
//! since the last checkpoint, appended as one checksummed record. Reopening
//! a durable database loads the checkpoint and replays the tail, so an
//! insert whose append completed survives any crash — the acknowledged-write
//! guarantee (`tests/crash_fuzz.rs` kills the log at every byte offset and
//! checks exactly this).
//!
//! ## Record format
//!
//! All integers little-endian; one record per acknowledged insert:
//!
//! ```text
//! len       u32     payload length in bytes
//! checksum  u64     [`crate::pages::checksum`] of the payload
//! payload:
//!   tag        u8      record kind (1 = insert)
//!   id         u64     row id the insert was acknowledged under
//!   name       str     u32 length + UTF-8 bytes (the row's name attribute)
//!   series_len u32     number of samples
//!   samples    f64 × n exact IEEE-754 bit patterns
//! ```
//!
//! There is no file header: an empty (or absent) WAL is a valid empty tail,
//! and appends never rewrite existing bytes, so the on-disk state at any
//! instant is a prefix of the record stream plus at most one torn record.
//!
//! ## Replay
//!
//! [`replay`] walks records from the start and stops at the first one that
//! is short, fails its checksum, or carries an undecodable payload — the
//! *longest valid prefix* rule. Everything after that point is reported
//! (bytes dropped, plus a best-effort resynchronized count of complete
//! records that were lost) but never applied: records behind a gap cannot
//! be trusted to be crash-ordered. Replay never panics on any input.

use crate::pages;
use simq_index::serial::{ByteReader, ByteWriter};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::Path;

/// Bytes of framing before each payload: `len: u32` + `checksum: u64`.
pub const RECORD_HEADER: usize = 4 + 8;
/// Record kind tag of an insert.
const TAG_INSERT: u8 = 1;
/// Upper bound on a single payload (defensive: a corrupted length field
/// must not drive a huge allocation during replay).
const MAX_PAYLOAD: usize = 1 << 30;

/// One logged operation: an insert acknowledged under a fixed row id.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Row id the insert was (or will be) acknowledged under.
    pub id: u64,
    /// The row's name attribute.
    pub name: String,
    /// The raw series, exact `f64` bit patterns.
    pub series: Vec<f64>,
}

/// The outcome of replaying one WAL byte stream.
#[derive(Debug, Clone, Default)]
pub struct WalReplay {
    /// Records of the longest valid prefix, in append order.
    pub records: Vec<WalRecord>,
    /// Byte length of that prefix (the truncation point for repair).
    pub valid_len: usize,
    /// Bytes beyond the valid prefix (torn or corrupted tail).
    pub dropped_bytes: usize,
    /// Complete, checksummed records found in the dropped tail by
    /// resynchronization — a best-effort count of whole records lost to a
    /// mid-log corruption (a torn final record adds nothing here; its
    /// bytes are only in [`WalReplay::dropped_bytes`]).
    pub dropped_records: usize,
}

/// Encodes one record (framing + payload).
pub fn encode_record(rec: &WalRecord) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(TAG_INSERT);
    w.put_u64(rec.id);
    w.put_str(&rec.name);
    w.put_u32(rec.series.len() as u32);
    for v in &rec.series {
        w.put_f64(*v);
    }
    let payload = w.into_bytes();
    let mut out = Vec::with_capacity(RECORD_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&pages::checksum(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Tries to decode one record at the start of `bytes`. Returns the record
/// and its total encoded length, or `None` when the bytes do not begin
/// with a complete, checksummed, decodable record.
fn decode_record(bytes: &[u8]) -> Option<(WalRecord, usize)> {
    if bytes.len() < RECORD_HEADER {
        return None;
    }
    let len = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes")) as usize;
    if len > MAX_PAYLOAD || bytes.len() < RECORD_HEADER + len {
        return None;
    }
    let stored_sum = u64::from_le_bytes(bytes[4..12].try_into().expect("8 bytes"));
    let payload = &bytes[RECORD_HEADER..RECORD_HEADER + len];
    if pages::checksum(payload) != stored_sum {
        return None;
    }
    let mut r = ByteReader::new(payload);
    let tag = r.get_u8().ok()?;
    if tag != TAG_INSERT {
        return None;
    }
    let id = r.get_u64().ok()?;
    let name = r.get_str().ok()?;
    let series_len = r.get_u32().ok()? as usize;
    r.check_count(series_len, 8).ok()?;
    let series = r.get_f64_vec(series_len).ok()?;
    if r.remaining() != 0 {
        return None;
    }
    Some((WalRecord { id, name, series }, RECORD_HEADER + len))
}

/// Replays a WAL byte stream: decodes the longest valid prefix of records
/// and accounts for everything after it. Never panics, never errors — a
/// corrupt or torn log yields a shorter prefix, not a failure.
pub fn replay(bytes: &[u8]) -> WalReplay {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while let Some((rec, consumed)) = decode_record(&bytes[pos..]) {
        records.push(rec);
        pos += consumed;
    }
    let dropped_bytes = bytes.len() - pos;
    // Best-effort accounting of whole records lost beyond the prefix: scan
    // forward for the next position that parses as a valid record and keep
    // counting from there. These records are *not* applied — order across
    // the gap is unknowable — only counted.
    let mut dropped_records = 0usize;
    let mut scan = pos;
    while scan < bytes.len() {
        if let Some((_, consumed)) = decode_record(&bytes[scan..]) {
            dropped_records += 1;
            scan += consumed;
        } else {
            scan += 1;
        }
    }
    WalReplay {
        records,
        valid_len: pos,
        dropped_bytes,
        dropped_records,
    }
}

/// Appends one encoded record to the log at `path` (creating the file if
/// absent) and flushes it to the OS. Returns the number of bytes appended.
///
/// # Errors
/// I/O errors from the filesystem. On error the log may hold a torn tail;
/// replay truncates it.
pub fn append(path: &Path, rec: &WalRecord) -> io::Result<usize> {
    append_encoded(path, &encode_record(rec), 1)
}

/// Appends a whole group of records with **one** write and **one** sync —
/// the group-commit fast path. The records become durable together: after a
/// crash the log holds a prefix of the group (possibly empty, possibly all
/// of it), never an interleaving, so unacknowledged group members are
/// atomically absent-or-present in append order. Returns the bytes
/// appended. An empty group is a no-op (no write, no sync).
///
/// # Errors
/// I/O errors from the filesystem. On error the log may hold a torn tail;
/// replay truncates it.
pub fn append_group(path: &Path, records: &[WalRecord]) -> io::Result<usize> {
    if records.is_empty() {
        return Ok(0);
    }
    let bytes: Vec<u8> = records.iter().flat_map(encode_record).collect();
    let written = append_encoded(path, &bytes, records.len() as u64)?;
    simq_obs::metrics::registry()
        .wal_group_commits
        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    Ok(written)
}

/// Appends pre-encoded record bytes with one `write_all` + one `sync_data`
/// and — when this append *created* the log file — a parent directory
/// fsync, because a brand-new file's directory entry is not durable until
/// the directory itself is synced (an acknowledged insert could otherwise
/// vanish with its whole log on power loss). No metrics are recorded: the
/// caller owns accounting (a [`crate::group::WriteGroup`] leader flushes
/// for many writers and reports the realized group itself).
///
/// # Errors
/// I/O errors from the filesystem.
pub(crate) fn append_raw(path: &Path, bytes: &[u8]) -> io::Result<()> {
    // Detecting creation via a metadata probe is race-free here: each log
    // file has exactly one writer (the owning shard's group).
    let created = !path.exists();
    let mut file = OpenOptions::new().create(true).append(true).open(path)?;
    file.write_all(bytes)?;
    file.sync_data()?;
    if created {
        pages::fsync_parent_dir(path)?;
    }
    Ok(())
}

/// Shared tail of [`append`] / [`append_group`]: [`append_raw`] plus the
/// process-wide WAL metrics (appends, syncs, sync latency).
fn append_encoded(path: &Path, bytes: &[u8], record_count: u64) -> io::Result<usize> {
    let append_span = simq_obs::span::span("wal.append");
    let started = std::time::Instant::now();
    append_raw(path, bytes)?;
    let sync_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let m = simq_obs::metrics::registry();
    m.wal_appends
        .fetch_add(record_count, std::sync::atomic::Ordering::Relaxed);
    m.wal_syncs
        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    m.wal_sync_latency.record(sync_ns);
    m.wal_last_sync_ns
        .store(sync_ns, std::sync::atomic::Ordering::Relaxed);
    append_span.note("records", record_count);
    append_span.note("bytes", bytes.len() as u64);
    Ok(bytes.len())
}

/// Reads and replays the log at `path`. A missing file is an empty tail.
///
/// # Errors
/// I/O errors other than the file not existing.
pub fn load(path: &Path) -> io::Result<WalReplay> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    Ok(replay(&bytes))
}

/// Truncates the log at `path` to `valid_len` bytes — the repair step after
/// a replay found a torn or corrupted tail. A missing file is a no-op.
///
/// The new length must be synced with `sync_all`, not `sync_data`: a
/// truncation is a *metadata* change (the file's size), and `sync_data` is
/// allowed to skip metadata. Without it a crash after repair could bring
/// the torn tail back, and replay would silently re-repair — harmless for
/// the record stream (the valid prefix is unchanged) but a lie in the
/// replay report, which claimed the repair was durable.
///
/// # Errors
/// I/O errors from the filesystem.
pub fn truncate_to(path: &Path, valid_len: usize) -> io::Result<()> {
    match OpenOptions::new().write(true).open(path) {
        Ok(file) => {
            file.set_len(valid_len as u64)?;
            file.sync_all()
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e),
    }
}

/// Deletes the log at `path` — checkpoint truncation (the snapshot now
/// covers everything the tail held). A missing file is a no-op.
///
/// # Errors
/// I/O errors from the filesystem.
pub fn remove(path: &Path) -> io::Result<()> {
    match std::fs::remove_file(path) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<WalRecord> {
        (0..n)
            .map(|i| WalRecord {
                id: i as u64 * 3 + 1,
                name: format!("row-{i}"),
                series: (0..16).map(|t| (t * i) as f64 * 0.25 - 3.0).collect(),
            })
            .collect()
    }

    fn stream(records: &[WalRecord]) -> Vec<u8> {
        records.iter().flat_map(encode_record).collect()
    }

    #[test]
    fn roundtrip_preserves_bits() {
        let records = sample(7);
        let replayed = replay(&stream(&records));
        assert_eq!(replayed.records, records);
        assert_eq!(replayed.dropped_bytes, 0);
        assert_eq!(replayed.dropped_records, 0);
        for (a, b) in replayed.records.iter().zip(&records) {
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&a.series), bits(&b.series));
        }
    }

    #[test]
    fn empty_stream_is_empty_tail() {
        let replayed = replay(&[]);
        assert!(replayed.records.is_empty());
        assert_eq!(replayed.valid_len, 0);
    }

    #[test]
    fn torn_tail_truncates_to_complete_records() {
        let records = sample(5);
        let bytes = stream(&records);
        let third = stream(&records[..3]).len();
        // Every cut inside record 3 replays exactly records 0..3.
        for cut in third..stream(&records[..4]).len() {
            let replayed = replay(&bytes[..cut]);
            assert_eq!(replayed.records.len(), 3, "cut at {cut}");
            assert_eq!(replayed.valid_len, third);
            assert_eq!(replayed.dropped_bytes, cut - third);
            assert_eq!(replayed.dropped_records, 0, "a torn record never parses");
        }
    }

    #[test]
    fn mid_log_corruption_stops_replay_and_counts_losses() {
        let records = sample(6);
        let bytes = stream(&records);
        let two = stream(&records[..2]).len();
        let mut corrupt = bytes.clone();
        corrupt[two + RECORD_HEADER + 3] ^= 0xFF; // payload of record 2
        let replayed = replay(&corrupt);
        assert_eq!(replayed.records, records[..2]);
        assert_eq!(replayed.valid_len, two);
        assert_eq!(replayed.dropped_bytes, bytes.len() - two);
        // Records 3..6 are whole and resynchronizable; record 2 is not.
        assert_eq!(replayed.dropped_records, 3);
    }

    #[test]
    fn every_single_byte_flip_is_contained() {
        let records = sample(4);
        let bytes = stream(&records);
        for pos in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x10;
            let replayed = replay(&corrupt);
            // The prefix before the corrupted record always survives.
            let boundary = records
                .iter()
                .scan(0usize, |acc, r| {
                    *acc += encode_record(r).len();
                    Some(*acc)
                })
                .take_while(|end| *end <= pos)
                .count();
            assert!(
                replayed.records.len() >= boundary,
                "flip at {pos} lost intact prefix records"
            );
            for (a, b) in replayed.records.iter().take(boundary).zip(&records) {
                assert_eq!(a, b, "flip at {pos} altered a prefix record");
            }
        }
    }

    #[test]
    fn file_append_load_truncate() {
        let dir = std::env::temp_dir().join("simq-wal-unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.wal");
        std::fs::remove_file(&path).ok();

        assert!(load(&path).unwrap().records.is_empty());
        let records = sample(3);
        for r in &records {
            append(&path, r).unwrap();
        }
        assert_eq!(load(&path).unwrap().records, records);

        // Tear the tail on disk; load reports it, repair truncates it.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&encode_record(&records[0])[..9]);
        std::fs::write(&path, &bytes).unwrap();
        let replayed = load(&path).unwrap();
        assert_eq!(replayed.records, records);
        assert_eq!(replayed.dropped_bytes, 9);
        truncate_to(&path, replayed.valid_len).unwrap();
        let clean = load(&path).unwrap();
        assert_eq!(clean.records, records);
        assert_eq!(clean.dropped_bytes, 0);

        remove(&path).unwrap();
        remove(&path).unwrap(); // idempotent
        assert!(load(&path).unwrap().records.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
