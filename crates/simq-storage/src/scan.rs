//! Sequential-scan baselines.
//!
//! Two scan strategies, matching methods *a* and *b* of the paper's join
//! experiment and the scan side of Figures 10–12:
//!
//! * **naive** — compute the full transformed distance for every row;
//! * **early-abandoning** — "we stop the distance computation process as
//!   soon as the distance exceeds ε. In addition, we do the sequential
//!   scanning on the relation that stores the series in the frequency
//!   domain, not the time domain. Because each series in the frequency
//!   domain has its larger coefficients at the beginning, the distance
//!   computation process can skip many sequences within the first few
//!   coefficients."
//!
//! Both operate on stored normal-form spectra; distances equal time-domain
//! normal-form distances by Parseval.

use crate::relation::SeriesRelation;
use simq_dsp::complex::Complex;
use simq_series::error::SeriesError;
use simq_series::transform::SeriesTransform;

/// Work counters for scans, comparable with index search statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Rows examined.
    pub rows_scanned: u64,
    /// Complex coefficients compared.
    pub coefficients_compared: u64,
    /// Rows abandoned before the full distance was computed.
    pub early_abandoned: u64,
}

/// Pairs produced by all-pairs scans: `(id_a, id_b, distance)` with
/// `id_a < id_b`.
pub type PairList = Vec<(u64, u64, f64)>;

/// Pairs produced from one outer row, tagged with the row's position so
/// parallel workers' output can be reassembled in serial order.
type RowPairs = (usize, PairList);

/// A scan hit: row id and exact distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScanHit {
    /// Row id.
    pub id: u64,
    /// Euclidean distance between the (transformed) stored spectrum and
    /// the query spectrum.
    pub distance: f64,
}

/// Exact distance between a transformed spectrum and a query spectrum,
/// given the precomputed multipliers (frequency 0 is compared untouched —
/// normal forms have zero DC). Delegates to the shared chunked flat-slice
/// kernel ([`simq_series::kernel`]): completed sums are bitwise identical
/// to the original scalar loop; early abandoning is decided at chunk
/// granularity, so `compared` advances in chunk steps on abandoned rows.
pub(crate) fn transformed_distance_sq(
    spectrum: &[Complex],
    multipliers: &[Complex],
    query: &[Complex],
    abandon_at: Option<f64>,
    compared: &mut u64,
) -> (f64, bool) {
    simq_series::kernel::transformed_distance_sq(spectrum, multipliers, query, abandon_at, compared)
}

/// Range query by sequential scan over the frequency-domain relation.
///
/// Finds every row whose transformed normal-form spectrum lies within
/// `eps` of `query_spectrum`. With `early_abandon` the per-row computation
/// stops as soon as the partial sum exceeds `eps²` (method *b*); without
/// it the full distance is always computed (method *a*).
///
/// # Errors
/// Transformation-domain errors (invalid window for the relation's series
/// length, etc.).
pub fn scan_range(
    relation: &SeriesRelation,
    transform: &SeriesTransform,
    query_spectrum: &[Complex],
    eps: f64,
    early_abandon: bool,
) -> Result<(Vec<ScanHit>, ScanStats), SeriesError> {
    let n = relation.series_len();
    let action = transform.action(n, n.saturating_sub(1))?;
    let mut hits = Vec::new();
    let mut stats = ScanStats::default();
    let limit = early_abandon.then_some(eps * eps);
    for row in relation.rows() {
        stats.rows_scanned += 1;
        let (d_sq, abandoned) = transformed_distance_sq(
            &row.features.spectrum,
            &action.multipliers,
            query_spectrum,
            limit,
            &mut stats.coefficients_compared,
        );
        if abandoned {
            stats.early_abandoned += 1;
            continue;
        }
        if d_sq.sqrt() <= eps {
            hits.push(ScanHit {
                id: row.id,
                distance: d_sq.sqrt(),
            });
        }
    }
    Ok((hits, stats))
}

/// All-pairs query by nested-loop scan: every unordered pair `(i, j)`,
/// `i < j`, whose transformed spectra lie within `eps` of each other
/// (both sides transformed, as in the paper's join methods *a*/*b*).
///
/// # Errors
/// Transformation-domain errors.
pub fn scan_all_pairs(
    relation: &SeriesRelation,
    transform: &SeriesTransform,
    eps: f64,
    early_abandon: bool,
) -> Result<(PairList, ScanStats), SeriesError> {
    scan_all_pairs_two(relation, transform, transform, eps, early_abandon)
}

/// All-pairs scan between `L(r)` and `R(r)` with independent
/// transformations per side — the general join of the query language
/// (`MATCHING L AGAINST R`). A pair qualifies when *either* orientation
/// `D(L(x̂_i), R(x̂_j))` or `D(L(x̂_j), R(x̂_i))` is within `eps`; the
/// smaller distance is reported. When `left == right` the orientations
/// coincide and only one is computed.
///
/// # Errors
/// Transformation-domain errors.
pub fn scan_all_pairs_two(
    relation: &SeriesRelation,
    left: &SeriesTransform,
    right: &SeriesTransform,
    eps: f64,
    early_abandon: bool,
) -> Result<(PairList, ScanStats), SeriesError> {
    let rows: Vec<_> = relation.rows().collect();
    scan_all_pairs_rows(
        &rows,
        relation.series_len(),
        left,
        right,
        eps,
        early_abandon,
    )
}

/// [`scan_all_pairs_two`] over an explicit row list (the sharded path
/// hands in the shards' rows flattened in id order; the relation path
/// hands in its insertion order). Pairs are emitted as
/// `(rows[i].id, rows[j].id)` with `i < j` in the given order.
///
/// # Errors
/// Transformation-domain errors.
pub(crate) fn scan_all_pairs_rows(
    rows: &[&crate::relation::SeriesRow],
    series_len: usize,
    left: &SeriesTransform,
    right: &SeriesTransform,
    eps: f64,
    early_abandon: bool,
) -> Result<(PairList, ScanStats), SeriesError> {
    let ctx = PairScan::prepare_rows(rows, series_len, left, right, eps, early_abandon)?;
    let mut out = Vec::new();
    let mut stats = ScanStats::default();
    for i in 0..rows.len() {
        stats.rows_scanned += 1;
        for j in (i + 1)..rows.len() {
            if let Some(d) = ctx.pair_distance(i, j, &mut stats) {
                out.push((rows[i].id, rows[j].id, d));
            }
        }
    }
    Ok((out, stats))
}

/// Shared machinery of the serial and parallel all-pairs scans: the
/// per-side pre-transformed spectra and the per-pair predicate live in one
/// place so the two paths cannot drift numerically (their exact equality
/// is a documented guarantee).
struct PairScan {
    lefts: Vec<Vec<Complex>>,
    /// Empty when the join is symmetric (`lefts` serves both sides).
    rights: Vec<Vec<Complex>>,
    symmetric: bool,
    identity: Vec<Complex>,
    limit: Option<f64>,
    eps: f64,
}

impl PairScan {
    /// Computes both transformation actions and pre-transforms every
    /// stored spectrum once per side (the scan reads each row many
    /// times).
    fn prepare_rows(
        rows: &[&crate::relation::SeriesRow],
        series_len: usize,
        left: &SeriesTransform,
        right: &SeriesTransform,
        eps: f64,
        early_abandon: bool,
    ) -> Result<Self, SeriesError> {
        let n = series_len;
        let count = n.saturating_sub(1);
        let left_action = left.action(n, count)?;
        let right_action = right.action(n, count)?;
        let symmetric = left == right;
        let apply = |mults: &[Complex]| -> Vec<Vec<Complex>> {
            rows.iter()
                .map(|r| {
                    let mut s = Vec::with_capacity(r.features.spectrum.len());
                    s.push(r.features.spectrum[0]);
                    for (x, a) in r.features.spectrum[1..].iter().zip(mults) {
                        s.push(*x * *a);
                    }
                    s
                })
                .collect()
        };
        Ok(PairScan {
            lefts: apply(&left_action.multipliers),
            rights: if symmetric {
                Vec::new()
            } else {
                apply(&right_action.multipliers)
            },
            symmetric,
            identity: vec![Complex::ONE; count],
            limit: early_abandon.then_some(eps * eps),
            eps,
        })
    }

    fn rights(&self) -> &[Vec<Complex>] {
        if self.symmetric {
            &self.lefts
        } else {
            &self.rights
        }
    }

    /// The all-pairs predicate for rows `(i, j)`: the smaller qualifying
    /// orientation distance, or `None` when neither orientation is within
    /// `eps`.
    fn pair_distance(&self, i: usize, j: usize, stats: &mut ScanStats) -> Option<f64> {
        let mut best: Option<f64> = None;
        let mut check = |a: &[Complex], b: &[Complex], stats: &mut ScanStats| {
            let (d_sq, abandoned) = transformed_distance_sq(
                a,
                &self.identity,
                b,
                self.limit,
                &mut stats.coefficients_compared,
            );
            if abandoned {
                stats.early_abandoned += 1;
                return;
            }
            let d = d_sq.sqrt();
            if d <= self.eps && best.is_none_or(|cur| d < cur) {
                best = Some(d);
            }
        };
        check(&self.lefts[i], &self.rights()[j], stats);
        if !self.symmetric {
            check(&self.lefts[j], &self.rights()[i], stats);
        }
        best
    }
}

/// k-nearest-neighbour query by full scan (the exact reference answer for
/// index-based kNN). Ties broken by id.
///
/// # Errors
/// Transformation-domain errors.
pub fn scan_knn(
    relation: &SeriesRelation,
    transform: &SeriesTransform,
    query_spectrum: &[Complex],
    k: usize,
) -> Result<(Vec<ScanHit>, ScanStats), SeriesError> {
    let n = relation.series_len();
    let action = transform.action(n, n.saturating_sub(1))?;
    let mut stats = ScanStats::default();
    let mut all: Vec<ScanHit> = Vec::with_capacity(relation.len());
    for row in relation.rows() {
        stats.rows_scanned += 1;
        let (d_sq, _) = transformed_distance_sq(
            &row.features.spectrum,
            &action.multipliers,
            query_spectrum,
            None,
            &mut stats.coefficients_compared,
        );
        all.push(ScanHit {
            id: row.id,
            distance: d_sq.sqrt(),
        });
    }
    all.sort_by(|a, b| {
        a.distance
            .partial_cmp(&b.distance)
            .expect("finite distances")
            .then(a.id.cmp(&b.id))
    });
    all.truncate(k);
    Ok((all, stats))
}

/// Work counters of one parallel scan: merged totals plus each worker
/// thread's share.
#[derive(Debug, Clone, Default)]
pub struct ParallelScanStats {
    /// Totals across all threads — comparable with the serial counters.
    pub merged: ScanStats,
    /// One entry per worker thread.
    pub per_thread: Vec<ScanStats>,
}

impl ParallelScanStats {
    fn from_workers(workers: Vec<ScanStats>) -> Self {
        let mut merged = ScanStats::default();
        for w in &workers {
            merged.rows_scanned += w.rows_scanned;
            merged.coefficients_compared += w.coefficients_compared;
            merged.early_abandoned += w.early_abandoned;
        }
        ParallelScanStats {
            merged,
            per_thread: workers,
        }
    }
}

/// Splits `n` work items into at most `threads` contiguous, non-empty
/// `[lo, hi)` chunks (shared by the parallel scans here and the parallel
/// verification phases in `simq-query`).
pub fn chunk_bounds(n: usize, threads: usize) -> Vec<(usize, usize)> {
    let threads = threads.max(1).min(n.max(1));
    let chunk = n.div_ceil(threads);
    (0..threads)
        .map(|t| (t * chunk, ((t + 1) * chunk).min(n)))
        .filter(|(lo, hi)| lo < hi)
        .collect()
}

/// Parallel [`scan_range`]: contiguous row chunks are scanned by
/// independent threads, so the concatenated hit list preserves the serial
/// row order and every distance is computed by exactly the serial code.
///
/// # Errors
/// Transformation-domain errors.
pub fn scan_range_parallel(
    relation: &SeriesRelation,
    transform: &SeriesTransform,
    query_spectrum: &[Complex],
    eps: f64,
    early_abandon: bool,
    threads: usize,
) -> Result<(Vec<ScanHit>, ParallelScanStats), SeriesError> {
    let n = relation.series_len();
    let action = transform.action(n, n.saturating_sub(1))?;
    let rows: Vec<&crate::relation::SeriesRow> = relation.rows().collect();
    let limit = early_abandon.then_some(eps * eps);
    let bounds = chunk_bounds(rows.len(), threads);
    if bounds.len() <= 1 {
        let (hits, stats) = scan_range(relation, transform, query_spectrum, eps, early_abandon)?;
        return Ok((hits, ParallelScanStats::from_workers(vec![stats])));
    }
    let workers: Vec<(Vec<ScanHit>, ScanStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = bounds
            .iter()
            .map(|&(lo, hi)| {
                let rows = &rows[lo..hi];
                let action = &action;
                scope.spawn(move || {
                    let mut hits = Vec::new();
                    let mut stats = ScanStats::default();
                    for row in rows {
                        stats.rows_scanned += 1;
                        let (d_sq, abandoned) = transformed_distance_sq(
                            &row.features.spectrum,
                            &action.multipliers,
                            query_spectrum,
                            limit,
                            &mut stats.coefficients_compared,
                        );
                        if abandoned {
                            stats.early_abandoned += 1;
                            continue;
                        }
                        if d_sq.sqrt() <= eps {
                            hits.push(ScanHit {
                                id: row.id,
                                distance: d_sq.sqrt(),
                            });
                        }
                    }
                    (hits, stats)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scan worker panicked"))
            .collect()
    });
    let mut hits = Vec::new();
    let mut per_thread = Vec::with_capacity(workers.len());
    for (h, s) in workers {
        hits.extend(h);
        per_thread.push(s);
    }
    Ok((hits, ParallelScanStats::from_workers(per_thread)))
}

/// Parallel [`scan_knn`] with a merged early-abandon bound.
///
/// Each thread scans a contiguous chunk keeping its local top-`k` (plus
/// ties); the `k`-th best distance any thread has seen is published to a
/// shared atomic bound, letting *every* thread abandon a row as soon as
/// its partial sum provably exceeds the global `k`-th best. Rows abandoned
/// this way are strictly worse than `k` already-found rows, so the merged,
/// `(distance, id)`-sorted, truncated result equals the serial scan
/// exactly — while comparing far fewer coefficients.
///
/// # Errors
/// Transformation-domain errors.
pub fn scan_knn_parallel(
    relation: &SeriesRelation,
    transform: &SeriesTransform,
    query_spectrum: &[Complex],
    k: usize,
    threads: usize,
) -> Result<(Vec<ScanHit>, ParallelScanStats), SeriesError> {
    use simq_index::parallel::AtomicF64Min;

    let n = relation.series_len();
    let action = transform.action(n, n.saturating_sub(1))?;
    let rows: Vec<&crate::relation::SeriesRow> = relation.rows().collect();
    let bounds = chunk_bounds(rows.len(), threads);
    if k == 0 {
        return Ok((Vec::new(), ParallelScanStats::from_workers(Vec::new())));
    }
    if bounds.len() <= 1 {
        let (hits, stats) = scan_knn(relation, transform, query_spectrum, k)?;
        return Ok((hits, ParallelScanStats::from_workers(vec![stats])));
    }

    // Shared upper bound on the k-th smallest squared distance (monotone
    // decreasing).
    let global_kth_sq = AtomicF64Min::new(f64::INFINITY);

    let workers: Vec<(Vec<ScanHit>, ScanStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = bounds
            .iter()
            .map(|&(lo, hi)| {
                let rows = &rows[lo..hi];
                let action = &action;
                let global_kth_sq = &global_kth_sq;
                scope.spawn(move || {
                    let mut stats = ScanStats::default();
                    // Candidates kept: everything not provably outside the
                    // global top-k at visit time (superset of the answer).
                    let mut kept: Vec<ScanHit> = Vec::new();
                    // Local k smallest squared distances (max-heap) — the
                    // source of published bounds.
                    let mut local: std::collections::BinaryHeap<u64> =
                        std::collections::BinaryHeap::with_capacity(k + 1);
                    for row in rows {
                        stats.rows_scanned += 1;
                        let bound = global_kth_sq.get();
                        let limit = bound.is_finite().then_some(bound);
                        let (d_sq, abandoned) = transformed_distance_sq(
                            &row.features.spectrum,
                            &action.multipliers,
                            query_spectrum,
                            limit,
                            &mut stats.coefficients_compared,
                        );
                        if abandoned {
                            stats.early_abandoned += 1;
                            continue;
                        }
                        kept.push(ScanHit {
                            id: row.id,
                            distance: d_sq.sqrt(),
                        });
                        if local.len() < k {
                            local.push(d_sq.to_bits());
                        } else if d_sq.to_bits() < *local.peek().expect("k > 0") {
                            local.pop();
                            local.push(d_sq.to_bits());
                        }
                        if local.len() == k {
                            global_kth_sq.fetch_min(f64::from_bits(*local.peek().expect("k > 0")));
                        }
                    }
                    (kept, stats)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("kNN scan worker panicked"))
            .collect()
    });

    let mut all = Vec::new();
    let mut per_thread = Vec::with_capacity(workers.len());
    for (kept, s) in workers {
        all.extend(kept);
        per_thread.push(s);
    }
    all.sort_by(|a, b| {
        a.distance
            .partial_cmp(&b.distance)
            .expect("finite distances")
            .then(a.id.cmp(&b.id))
    });
    all.truncate(k);
    Ok((all, ParallelScanStats::from_workers(per_thread)))
}

/// Parallel [`scan_all_pairs_two`]: threads claim outer rows from a shared
/// cursor (the triangular inner loop makes static chunks unbalanced) and
/// the per-row pair lists are reassembled in row order, reproducing the
/// serial output exactly.
///
/// # Errors
/// Transformation-domain errors.
pub fn scan_all_pairs_two_parallel(
    relation: &SeriesRelation,
    left: &SeriesTransform,
    right: &SeriesTransform,
    eps: f64,
    early_abandon: bool,
    threads: usize,
) -> Result<(PairList, ParallelScanStats), SeriesError> {
    let rows: Vec<&crate::relation::SeriesRow> = relation.rows().collect();
    scan_all_pairs_rows_parallel(
        &rows,
        relation.series_len(),
        left,
        right,
        eps,
        early_abandon,
        threads,
    )
}

/// [`scan_all_pairs_two_parallel`] over an explicit row list (see
/// [`scan_all_pairs_rows`]).
///
/// # Errors
/// Transformation-domain errors.
#[allow(clippy::too_many_arguments)]
pub(crate) fn scan_all_pairs_rows_parallel(
    rows: &[&crate::relation::SeriesRow],
    series_len: usize,
    left: &SeriesTransform,
    right: &SeriesTransform,
    eps: f64,
    early_abandon: bool,
    threads: usize,
) -> Result<(PairList, ParallelScanStats), SeriesError> {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let threads = threads.max(1).min(rows.len().max(1));
    if threads <= 1 {
        let (pairs, stats) =
            scan_all_pairs_rows(rows, series_len, left, right, eps, early_abandon)?;
        return Ok((pairs, ParallelScanStats::from_workers(vec![stats])));
    }

    // The exact machinery the serial scan uses, shared read-only.
    let ctx = PairScan::prepare_rows(rows, series_len, left, right, eps, early_abandon)?;

    let cursor = AtomicUsize::new(0);
    let workers: Vec<(Vec<RowPairs>, ScanStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let rows = &rows;
                let ctx = &ctx;
                let cursor = &cursor;
                scope.spawn(move || {
                    let mut stats = ScanStats::default();
                    let mut produced: Vec<RowPairs> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= rows.len() {
                            break;
                        }
                        stats.rows_scanned += 1;
                        let mut local = Vec::new();
                        for j in (i + 1)..rows.len() {
                            if let Some(d) = ctx.pair_distance(i, j, &mut stats) {
                                local.push((rows[i].id, rows[j].id, d));
                            }
                        }
                        if !local.is_empty() {
                            produced.push((i, local));
                        }
                    }
                    (produced, stats)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("all-pairs worker panicked"))
            .collect()
    });

    let mut grouped: Vec<RowPairs> = Vec::new();
    let mut per_thread = Vec::with_capacity(workers.len());
    for (produced, s) in workers {
        grouped.extend(produced);
        per_thread.push(s);
    }
    grouped.sort_by_key(|(i, _)| *i);
    let out: PairList = grouped.into_iter().flat_map(|(_, v)| v).collect();
    Ok((out, ParallelScanStats::from_workers(per_thread)))
}

/// Parallel [`scan_all_pairs`] (both sides under one transformation).
///
/// # Errors
/// Transformation-domain errors.
pub fn scan_all_pairs_parallel(
    relation: &SeriesRelation,
    transform: &SeriesTransform,
    eps: f64,
    early_abandon: bool,
    threads: usize,
) -> Result<(PairList, ParallelScanStats), SeriesError> {
    scan_all_pairs_two_parallel(relation, transform, transform, eps, early_abandon, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::SeriesRelation;
    use simq_series::features::FeatureScheme;

    fn relation_with(seedlings: usize) -> SeriesRelation {
        let mut rel = SeriesRelation::new("r", 64, FeatureScheme::paper_default());
        for i in 0..seedlings {
            let series: Vec<f64> = (0..64)
                .map(|t| {
                    20.0 + (t as f64 * (0.1 + i as f64 * 0.013)).sin() * 4.0
                        + (t as f64 * 0.31).cos() * (i % 5) as f64
                })
                .collect();
            rel.insert(format!("S{i}"), series).unwrap();
        }
        rel
    }

    #[test]
    fn early_abandon_matches_naive() {
        let rel = relation_with(60);
        let q = rel.row(10).unwrap().features.spectrum.clone();
        let t = SeriesTransform::Identity;
        for eps in [0.1, 1.0, 5.0, 100.0] {
            let (mut naive, _) = scan_range(&rel, &t, &q, eps, false).unwrap();
            let (mut fast, fast_stats) = scan_range(&rel, &t, &q, eps, true).unwrap();
            naive.sort_by_key(|h| h.id);
            fast.sort_by_key(|h| h.id);
            assert_eq!(naive.len(), fast.len(), "eps {eps}");
            for (a, b) in naive.iter().zip(&fast) {
                assert_eq!(a.id, b.id);
                assert!((a.distance - b.distance).abs() < 1e-12);
            }
            if eps < 5.0 {
                assert!(fast_stats.early_abandoned > 0, "eps {eps} abandoned none");
            }
        }
    }

    #[test]
    fn early_abandon_compares_fewer_coefficients() {
        let rel = relation_with(100);
        let q = rel.row(0).unwrap().features.spectrum.clone();
        let t = SeriesTransform::Identity;
        let (_, naive) = scan_range(&rel, &t, &q, 0.5, false).unwrap();
        let (_, fast) = scan_range(&rel, &t, &q, 0.5, true).unwrap();
        assert!(fast.coefficients_compared < naive.coefficients_compared / 2);
    }

    #[test]
    fn query_finds_itself_at_distance_zero() {
        let rel = relation_with(20);
        let q = rel.row(7).unwrap().features.spectrum.clone();
        let (hits, _) = scan_range(&rel, &SeriesTransform::Identity, &q, 1e-9, true).unwrap();
        assert!(hits.iter().any(|h| h.id == 7 && h.distance < 1e-9));
    }

    #[test]
    fn transformed_scan_matches_time_domain_reference() {
        // Distance after mavg(5) on normal forms: frequency-domain scan
        // must equal the time-domain computation (Parseval + Equation 11).
        let rel = relation_with(15);
        let t = SeriesTransform::MovingAverage { window: 5 };
        let q_row = rel.row(3).unwrap();
        let q_spec = t.apply_spectrum(&q_row.features.spectrum, 64).unwrap();
        let (hits, _) = scan_range(&rel, &t, &q_spec, 100.0, false).unwrap();
        for h in &hits {
            let row = rel.row(h.id).unwrap();
            let nf_a = simq_series::normal_form(&row.raw).unwrap();
            let nf_q = simq_series::normal_form(&q_row.raw).unwrap();
            let ta = t.apply_time(&nf_a).unwrap();
            let tq = t.apply_time(&nf_q).unwrap();
            let expected = simq_dsp::euclidean(&ta, &tq);
            assert!(
                (h.distance - expected).abs() < 1e-8,
                "row {}: {} vs {expected}",
                h.id,
                h.distance
            );
        }
    }

    #[test]
    fn all_pairs_is_symmetric_free_and_complete() {
        let rel = relation_with(25);
        let (pairs, _) = scan_all_pairs(&rel, &SeriesTransform::Identity, 3.0, true).unwrap();
        // Each unordered pair at most once, i < j.
        for (i, j, _) in &pairs {
            assert!(i < j);
        }
        // Cross-check against range queries.
        for (i, j, d) in &pairs {
            let q = rel.row(*i).unwrap().features.spectrum.clone();
            let (hits, _) = scan_range(&rel, &SeriesTransform::Identity, &q, 3.0, false).unwrap();
            let hit = hits.iter().find(|h| h.id == *j).expect("pair member found");
            assert!((hit.distance - d).abs() < 1e-9);
        }
    }

    #[test]
    fn knn_scan_orders_by_distance() {
        let rel = relation_with(30);
        let q = rel.row(0).unwrap().features.spectrum.clone();
        let (hits, _) = scan_knn(&rel, &SeriesTransform::Identity, &q, 5).unwrap();
        assert_eq!(hits.len(), 5);
        assert_eq!(hits[0].id, 0);
        for w in hits.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn parallel_range_scan_equals_serial() {
        let rel = relation_with(97);
        let q = rel.row(13).unwrap().features.spectrum.clone();
        let t = SeriesTransform::MovingAverage { window: 5 };
        let q_spec = t.apply_spectrum(&q, 64).unwrap();
        for eps in [0.2, 1.5, 20.0] {
            for abandon in [false, true] {
                let (serial, s_stats) = scan_range(&rel, &t, &q_spec, eps, abandon).unwrap();
                for threads in [1, 2, 4, 8] {
                    let (par, p_stats) =
                        scan_range_parallel(&rel, &t, &q_spec, eps, abandon, threads).unwrap();
                    assert_eq!(par.len(), serial.len());
                    for (a, b) in par.iter().zip(&serial) {
                        assert_eq!(a.id, b.id);
                        assert_eq!(a.distance.to_bits(), b.distance.to_bits());
                    }
                    assert_eq!(p_stats.merged, s_stats, "threads {threads} eps {eps}");
                }
            }
        }
    }

    #[test]
    fn parallel_knn_scan_equals_serial() {
        let rel = relation_with(120);
        let q = rel.row(7).unwrap().features.spectrum.clone();
        let t = SeriesTransform::Identity;
        for k in [1, 5, 17, 120, 200] {
            let (serial, _) = scan_knn(&rel, &t, &q, k).unwrap();
            for threads in [2, 3, 8] {
                let (par, _) = scan_knn_parallel(&rel, &t, &q, k, threads).unwrap();
                assert_eq!(par.len(), serial.len(), "k {k} threads {threads}");
                for (a, b) in par.iter().zip(&serial) {
                    assert_eq!(a.id, b.id, "k {k} threads {threads}");
                    assert_eq!(a.distance.to_bits(), b.distance.to_bits());
                }
            }
        }
    }

    #[test]
    fn parallel_knn_scan_abandons_with_shared_bound() {
        let rel = relation_with(200);
        let q = rel.row(0).unwrap().features.spectrum.clone();
        let (_, stats) = scan_knn_parallel(&rel, &SeriesTransform::Identity, &q, 3, 4).unwrap();
        // The shared bound lets most rows abandon early, unlike the serial
        // scan which always computes full distances.
        assert!(
            stats.merged.early_abandoned > 0,
            "expected shared-bound abandoning, got {stats:?}"
        );
    }

    #[test]
    fn parallel_all_pairs_equals_serial() {
        let rel = relation_with(40);
        let left = SeriesTransform::MovingAverage { window: 5 };
        let right = SeriesTransform::Identity;
        for (l, r) in [(&left, &left), (&left, &right)] {
            let (serial, _) = scan_all_pairs_two(&rel, l, r, 6.0, true).unwrap();
            for threads in [1, 2, 4, 9] {
                let (par, _) = scan_all_pairs_two_parallel(&rel, l, r, 6.0, true, threads).unwrap();
                assert_eq!(par.len(), serial.len(), "threads {threads}");
                for (a, b) in par.iter().zip(&serial) {
                    assert_eq!((a.0, a.1), (b.0, b.1));
                    assert_eq!(a.2.to_bits(), b.2.to_bits());
                }
            }
        }
    }

    #[test]
    fn parallel_stats_per_thread_sum_to_merged() {
        let rel = relation_with(50);
        let q = rel.row(2).unwrap().features.spectrum.clone();
        let (_, stats) =
            scan_range_parallel(&rel, &SeriesTransform::Identity, &q, 3.0, true, 4).unwrap();
        let mut sum = ScanStats::default();
        for s in &stats.per_thread {
            sum.rows_scanned += s.rows_scanned;
            sum.coefficients_compared += s.coefficients_compared;
            sum.early_abandoned += s.early_abandoned;
        }
        assert_eq!(sum, stats.merged);
    }
}
