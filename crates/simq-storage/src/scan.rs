//! Sequential-scan baselines.
//!
//! Two scan strategies, matching methods *a* and *b* of the paper's join
//! experiment and the scan side of Figures 10–12:
//!
//! * **naive** — compute the full transformed distance for every row;
//! * **early-abandoning** — "we stop the distance computation process as
//!   soon as the distance exceeds ε. In addition, we do the sequential
//!   scanning on the relation that stores the series in the frequency
//!   domain, not the time domain. Because each series in the frequency
//!   domain has its larger coefficients at the beginning, the distance
//!   computation process can skip many sequences within the first few
//!   coefficients."
//!
//! Both operate on stored normal-form spectra; distances equal time-domain
//! normal-form distances by Parseval.

use crate::relation::SeriesRelation;
use simq_dsp::complex::Complex;
use simq_series::error::SeriesError;
use simq_series::transform::SeriesTransform;

/// Work counters for scans, comparable with index search statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Rows examined.
    pub rows_scanned: u64,
    /// Complex coefficients compared.
    pub coefficients_compared: u64,
    /// Rows abandoned before the full distance was computed.
    pub early_abandoned: u64,
}

/// Pairs produced by all-pairs scans: `(id_a, id_b, distance)` with
/// `id_a < id_b`.
pub type PairList = Vec<(u64, u64, f64)>;

/// A scan hit: row id and exact distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScanHit {
    /// Row id.
    pub id: u64,
    /// Euclidean distance between the (transformed) stored spectrum and
    /// the query spectrum.
    pub distance: f64,
}

/// Exact distance between a transformed spectrum and a query spectrum,
/// given the precomputed multipliers (frequency 0 is compared untouched —
/// normal forms have zero DC).
fn transformed_distance_sq(
    spectrum: &[Complex],
    multipliers: &[Complex],
    query: &[Complex],
    abandon_at: Option<f64>,
    compared: &mut u64,
) -> (f64, bool) {
    debug_assert_eq!(spectrum.len(), query.len());
    let mut acc = (spectrum[0] - query[0]).norm_sqr();
    *compared += 1;
    if let Some(limit) = abandon_at {
        if acc > limit {
            return (acc, true);
        }
    }
    for f in 1..spectrum.len() {
        acc += (spectrum[f] * multipliers[f - 1] - query[f]).norm_sqr();
        *compared += 1;
        if let Some(limit) = abandon_at {
            if acc > limit {
                return (acc, true);
            }
        }
    }
    (acc, false)
}

/// Range query by sequential scan over the frequency-domain relation.
///
/// Finds every row whose transformed normal-form spectrum lies within
/// `eps` of `query_spectrum`. With `early_abandon` the per-row computation
/// stops as soon as the partial sum exceeds `eps²` (method *b*); without
/// it the full distance is always computed (method *a*).
///
/// # Errors
/// Transformation-domain errors (invalid window for the relation's series
/// length, etc.).
pub fn scan_range(
    relation: &SeriesRelation,
    transform: &SeriesTransform,
    query_spectrum: &[Complex],
    eps: f64,
    early_abandon: bool,
) -> Result<(Vec<ScanHit>, ScanStats), SeriesError> {
    let n = relation.series_len();
    let action = transform.action(n, n.saturating_sub(1))?;
    let mut hits = Vec::new();
    let mut stats = ScanStats::default();
    let limit = early_abandon.then_some(eps * eps);
    for row in relation.rows() {
        stats.rows_scanned += 1;
        let (d_sq, abandoned) = transformed_distance_sq(
            &row.features.spectrum,
            &action.multipliers,
            query_spectrum,
            limit,
            &mut stats.coefficients_compared,
        );
        if abandoned {
            stats.early_abandoned += 1;
            continue;
        }
        if d_sq.sqrt() <= eps {
            hits.push(ScanHit {
                id: row.id,
                distance: d_sq.sqrt(),
            });
        }
    }
    Ok((hits, stats))
}

/// All-pairs query by nested-loop scan: every unordered pair `(i, j)`,
/// `i < j`, whose transformed spectra lie within `eps` of each other
/// (both sides transformed, as in the paper's join methods *a*/*b*).
///
/// # Errors
/// Transformation-domain errors.
pub fn scan_all_pairs(
    relation: &SeriesRelation,
    transform: &SeriesTransform,
    eps: f64,
    early_abandon: bool,
) -> Result<(PairList, ScanStats), SeriesError> {
    scan_all_pairs_two(relation, transform, transform, eps, early_abandon)
}

/// All-pairs scan between `L(r)` and `R(r)` with independent
/// transformations per side — the general join of the query language
/// (`MATCHING L AGAINST R`). A pair qualifies when *either* orientation
/// `D(L(x̂_i), R(x̂_j))` or `D(L(x̂_j), R(x̂_i))` is within `eps`; the
/// smaller distance is reported. When `left == right` the orientations
/// coincide and only one is computed.
///
/// # Errors
/// Transformation-domain errors.
pub fn scan_all_pairs_two(
    relation: &SeriesRelation,
    left: &SeriesTransform,
    right: &SeriesTransform,
    eps: f64,
    early_abandon: bool,
) -> Result<(PairList, ScanStats), SeriesError> {
    let n = relation.series_len();
    let count = n.saturating_sub(1);
    let left_action = left.action(n, count)?;
    let right_action = right.action(n, count)?;
    let symmetric = left == right;
    let mut out = Vec::new();
    let mut stats = ScanStats::default();
    let limit = early_abandon.then_some(eps * eps);
    let rows: Vec<_> = relation.rows().collect();
    // Pre-transform all spectra once per side (the scan reads each row
    // many times).
    let apply = |mults: &[Complex]| -> Vec<Vec<Complex>> {
        rows.iter()
            .map(|r| {
                let mut s = Vec::with_capacity(r.features.spectrum.len());
                s.push(r.features.spectrum[0]);
                for (x, a) in r.features.spectrum[1..].iter().zip(mults) {
                    s.push(*x * *a);
                }
                s
            })
            .collect()
    };
    let lefts = apply(&left_action.multipliers);
    let rights = if symmetric {
        Vec::new()
    } else {
        apply(&right_action.multipliers)
    };
    let rights: &[Vec<Complex>] = if symmetric { &lefts } else { &rights };
    let identity = vec![Complex::ONE; count];
    for i in 0..rows.len() {
        stats.rows_scanned += 1;
        for j in (i + 1)..rows.len() {
            let mut best: Option<f64> = None;
            let mut check = |a: &[Complex], b: &[Complex], stats: &mut ScanStats| {
                let (d_sq, abandoned) = transformed_distance_sq(
                    a,
                    &identity,
                    b,
                    limit,
                    &mut stats.coefficients_compared,
                );
                if abandoned {
                    stats.early_abandoned += 1;
                    return;
                }
                let d = d_sq.sqrt();
                if d <= eps && best.is_none_or(|cur| d < cur) {
                    best = Some(d);
                }
            };
            check(&lefts[i], &rights[j], &mut stats);
            if !symmetric {
                check(&lefts[j], &rights[i], &mut stats);
            }
            if let Some(d) = best {
                out.push((rows[i].id, rows[j].id, d));
            }
        }
    }
    Ok((out, stats))
}

/// k-nearest-neighbour query by full scan (the exact reference answer for
/// index-based kNN). Ties broken by id.
///
/// # Errors
/// Transformation-domain errors.
pub fn scan_knn(
    relation: &SeriesRelation,
    transform: &SeriesTransform,
    query_spectrum: &[Complex],
    k: usize,
) -> Result<(Vec<ScanHit>, ScanStats), SeriesError> {
    let n = relation.series_len();
    let action = transform.action(n, n.saturating_sub(1))?;
    let mut stats = ScanStats::default();
    let mut all: Vec<ScanHit> = Vec::with_capacity(relation.len());
    for row in relation.rows() {
        stats.rows_scanned += 1;
        let (d_sq, _) = transformed_distance_sq(
            &row.features.spectrum,
            &action.multipliers,
            query_spectrum,
            None,
            &mut stats.coefficients_compared,
        );
        all.push(ScanHit {
            id: row.id,
            distance: d_sq.sqrt(),
        });
    }
    all.sort_by(|a, b| {
        a.distance
            .partial_cmp(&b.distance)
            .expect("finite distances")
            .then(a.id.cmp(&b.id))
    });
    all.truncate(k);
    Ok((all, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::SeriesRelation;
    use simq_series::features::FeatureScheme;

    fn relation_with(seedlings: usize) -> SeriesRelation {
        let mut rel = SeriesRelation::new("r", 64, FeatureScheme::paper_default());
        for i in 0..seedlings {
            let series: Vec<f64> = (0..64)
                .map(|t| {
                    20.0 + (t as f64 * (0.1 + i as f64 * 0.013)).sin() * 4.0
                        + (t as f64 * 0.31).cos() * (i % 5) as f64
                })
                .collect();
            rel.insert(format!("S{i}"), series).unwrap();
        }
        rel
    }

    #[test]
    fn early_abandon_matches_naive() {
        let rel = relation_with(60);
        let q = rel.row(10).unwrap().features.spectrum.clone();
        let t = SeriesTransform::Identity;
        for eps in [0.1, 1.0, 5.0, 100.0] {
            let (mut naive, _) = scan_range(&rel, &t, &q, eps, false).unwrap();
            let (mut fast, fast_stats) = scan_range(&rel, &t, &q, eps, true).unwrap();
            naive.sort_by_key(|h| h.id);
            fast.sort_by_key(|h| h.id);
            assert_eq!(naive.len(), fast.len(), "eps {eps}");
            for (a, b) in naive.iter().zip(&fast) {
                assert_eq!(a.id, b.id);
                assert!((a.distance - b.distance).abs() < 1e-12);
            }
            if eps < 5.0 {
                assert!(fast_stats.early_abandoned > 0, "eps {eps} abandoned none");
            }
        }
    }

    #[test]
    fn early_abandon_compares_fewer_coefficients() {
        let rel = relation_with(100);
        let q = rel.row(0).unwrap().features.spectrum.clone();
        let t = SeriesTransform::Identity;
        let (_, naive) = scan_range(&rel, &t, &q, 0.5, false).unwrap();
        let (_, fast) = scan_range(&rel, &t, &q, 0.5, true).unwrap();
        assert!(fast.coefficients_compared < naive.coefficients_compared / 2);
    }

    #[test]
    fn query_finds_itself_at_distance_zero() {
        let rel = relation_with(20);
        let q = rel.row(7).unwrap().features.spectrum.clone();
        let (hits, _) = scan_range(&rel, &SeriesTransform::Identity, &q, 1e-9, true).unwrap();
        assert!(hits.iter().any(|h| h.id == 7 && h.distance < 1e-9));
    }

    #[test]
    fn transformed_scan_matches_time_domain_reference() {
        // Distance after mavg(5) on normal forms: frequency-domain scan
        // must equal the time-domain computation (Parseval + Equation 11).
        let rel = relation_with(15);
        let t = SeriesTransform::MovingAverage { window: 5 };
        let q_row = rel.row(3).unwrap();
        let q_spec = t
            .apply_spectrum(&q_row.features.spectrum, 64)
            .unwrap();
        let (hits, _) = scan_range(&rel, &t, &q_spec, 100.0, false).unwrap();
        for h in &hits {
            let row = rel.row(h.id).unwrap();
            let nf_a = simq_series::normal_form(&row.raw).unwrap();
            let nf_q = simq_series::normal_form(&q_row.raw).unwrap();
            let ta = t.apply_time(&nf_a).unwrap();
            let tq = t.apply_time(&nf_q).unwrap();
            let expected = simq_dsp::euclidean(&ta, &tq);
            assert!(
                (h.distance - expected).abs() < 1e-8,
                "row {}: {} vs {expected}",
                h.id,
                h.distance
            );
        }
    }

    #[test]
    fn all_pairs_is_symmetric_free_and_complete() {
        let rel = relation_with(25);
        let (pairs, _) = scan_all_pairs(&rel, &SeriesTransform::Identity, 3.0, true).unwrap();
        // Each unordered pair at most once, i < j.
        for (i, j, _) in &pairs {
            assert!(i < j);
        }
        // Cross-check against range queries.
        for (i, j, d) in &pairs {
            let q = rel.row(*i).unwrap().features.spectrum.clone();
            let (hits, _) =
                scan_range(&rel, &SeriesTransform::Identity, &q, 3.0, false).unwrap();
            let hit = hits.iter().find(|h| h.id == *j).expect("pair member found");
            assert!((hit.distance - d).abs() < 1e-9);
        }
    }

    #[test]
    fn knn_scan_orders_by_distance() {
        let rel = relation_with(30);
        let q = rel.row(0).unwrap().features.spectrum.clone();
        let (hits, _) = scan_knn(&rel, &SeriesTransform::Identity, &q, 5).unwrap();
        assert_eq!(hits.len(), 5);
        assert_eq!(hits[0].id, 0);
        for w in hits.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }
}
