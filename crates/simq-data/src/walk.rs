//! The paper's synthetic sequences (Section 5):
//!
//! ```text
//! x_0 = y,            y  drawn from [20, 99]
//! x_i = x_{i−1} + z_i, z_i drawn from [−4, 4]
//! ```
//!
//! (The paper says "a normally distributed random number in the range
//! [20, 99]" — a contradiction, since a normal distribution is unbounded;
//! we read it as uniform over the stated range, which is the standard
//! reading of this generator lineage and what AFS93/FRM94 used.)

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator for the paper's random-walk sequences.
#[derive(Debug, Clone)]
pub struct WalkGenerator {
    rng: StdRng,
    /// Inclusive range of the starting value.
    pub start_range: (f64, f64),
    /// Inclusive range of each step.
    pub step_range: (f64, f64),
}

impl WalkGenerator {
    /// The paper's parameters with a fixed seed.
    pub fn new(seed: u64) -> Self {
        WalkGenerator {
            rng: StdRng::seed_from_u64(seed),
            start_range: (20.0, 99.0),
            step_range: (-4.0, 4.0),
        }
    }

    /// Generates one sequence of length `n`.
    pub fn series(&mut self, n: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(n);
        if n == 0 {
            return out;
        }
        let mut x = self.rng.gen_range(self.start_range.0..=self.start_range.1);
        out.push(x);
        for _ in 1..n {
            x += self.rng.gen_range(self.step_range.0..=self.step_range.1);
            out.push(x);
        }
        out
    }

    /// Generates `count` sequences of length `n`.
    pub fn corpus(&mut self, count: usize, n: usize) -> Vec<Vec<f64>> {
        (0..count).map(|_| self.series(n)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = WalkGenerator::new(7).series(64);
        let b = WalkGenerator::new(7).series(64);
        assert_eq!(a, b);
        let c = WalkGenerator::new(8).series(64);
        assert_ne!(a, c);
    }

    #[test]
    fn respects_start_and_step_ranges() {
        let mut g = WalkGenerator::new(42);
        for _ in 0..50 {
            let s = g.series(100);
            assert!(s[0] >= 20.0 && s[0] <= 99.0);
            for w in s.windows(2) {
                let step = w[1] - w[0];
                assert!((-4.0..=4.0).contains(&step), "step {step} out of range");
            }
        }
    }

    #[test]
    fn corpus_shapes() {
        let mut g = WalkGenerator::new(1);
        let c = g.corpus(10, 128);
        assert_eq!(c.len(), 10);
        assert!(c.iter().all(|s| s.len() == 128));
    }

    #[test]
    fn empty_series() {
        let mut g = WalkGenerator::new(1);
        assert!(g.series(0).is_empty());
    }

    #[test]
    fn walks_are_not_constant() {
        let mut g = WalkGenerator::new(3);
        let s = g.series(128);
        let first = s[0];
        assert!(s.iter().any(|v| (v - first).abs() > 1e-9));
    }
}
