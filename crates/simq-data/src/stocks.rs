//! A stock-market simulator standing in for the paper's real data.
//!
//! The paper's real corpus — 1,067 daily closing-price series of 128
//! trading days from `ftp.ai.mit.edu/pub/stocks/results/` — is long gone.
//! The experiments do not depend on the actual prices, only on the
//! *structure* of the corpus: random-walk-like series whose DFT energy
//! concentrates in low frequencies, containing clusters of correlated
//! stocks (so that self-joins return non-trivial answer sets), some
//! anti-correlated pairs (the hedging scenario of Example 2.2), and
//! idiosyncratic noise.
//!
//! [`StockMarket`] generates exactly that: sectors with shared latent
//! trends, per-stock beta and volatility, mirrored (anti-correlated)
//! counterparts for a configurable fraction of stocks, and different
//! price levels — mirroring the BBA/ZTR contrast of Example 2.1 where one
//! stock trades around $9.50 with σ ≈ 1.18 and another around $8.64 with
//! σ ≈ 0.10.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the simulated market.
#[derive(Debug, Clone)]
pub struct MarketConfig {
    /// Number of series to generate.
    pub stocks: usize,
    /// Trading days per series.
    pub days: usize,
    /// Number of sectors (shared latent trends).
    pub sectors: usize,
    /// Fraction of stocks that get an anti-correlated mirror twin.
    pub mirrored_fraction: f64,
    /// Range of per-stock daily volatility (uniform).
    pub volatility: (f64, f64),
    /// Range of initial prices (uniform).
    pub price_range: (f64, f64),
}

impl Default for MarketConfig {
    fn default() -> Self {
        MarketConfig {
            stocks: 1067,
            days: 128,
            sectors: 12,
            mirrored_fraction: 0.05,
            volatility: (0.1, 1.2),
            price_range: (5.0, 80.0),
        }
    }
}

/// The role a generated series plays, for ground-truth-aware tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StockKind {
    /// Follows its sector trend.
    Sectoral {
        /// Sector index.
        sector: usize,
    },
    /// Anti-correlated mirror of another stock.
    Mirror {
        /// Index of the mirrored stock.
        of: usize,
    },
}

/// A generated stock series with its ground truth.
#[derive(Debug, Clone)]
pub struct Stock {
    /// Ticker-like name (`S0042`).
    pub name: String,
    /// Daily closing prices.
    pub prices: Vec<f64>,
    /// Ground truth for tests and examples.
    pub kind: StockKind,
}

/// The simulated market.
#[derive(Debug, Clone)]
pub struct StockMarket {
    /// Generated stocks.
    pub stocks: Vec<Stock>,
}

impl StockMarket {
    /// Generates a market from the configuration, deterministically for a
    /// given seed.
    pub fn generate(config: &MarketConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let sectors = config.sectors.max(1);
        // Latent sector trends: smooth random walks.
        let trends: Vec<Vec<f64>> = (0..sectors)
            .map(|_| {
                let mut t = Vec::with_capacity(config.days);
                let mut x = 0.0f64;
                let mut momentum = 0.0f64;
                for _ in 0..config.days {
                    momentum = 0.9 * momentum + rng.gen_range(-0.2..=0.2);
                    x += momentum;
                    t.push(x);
                }
                t
            })
            .collect();

        let mut stocks = Vec::with_capacity(config.stocks);
        let mut i = 0usize;
        while stocks.len() < config.stocks {
            let sector = rng.gen_range(0..sectors);
            let beta = rng.gen_range(0.5..=2.0);
            let vol = rng.gen_range(config.volatility.0..=config.volatility.1);
            let p0 = rng.gen_range(config.price_range.0..=config.price_range.1);
            let mut prices = Vec::with_capacity(config.days);
            for (d, trend) in trends[sector].iter().enumerate() {
                let noise: f64 = rng.gen_range(-1.0..=1.0) * vol;
                let level = p0 + beta * trend + noise;
                // Prices stay positive: floor at a penny.
                prices.push(level.max(0.01));
                let _ = d;
            }
            let idx = stocks.len();
            stocks.push(Stock {
                name: format!("S{idx:04}"),
                prices,
                kind: StockKind::Sectoral { sector },
            });
            // Occasionally add an anti-correlated mirror of this stock.
            if stocks.len() < config.stocks && rng.gen_bool(config.mirrored_fraction) {
                let base = &stocks[idx];
                let level = 2.0 * base.prices.iter().sum::<f64>() / base.prices.len() as f64;
                let mirrored: Vec<f64> = base
                    .prices
                    .iter()
                    .map(|p| (level - p + rng.gen_range(-0.05..=0.05)).max(0.01))
                    .collect();
                let midx = stocks.len();
                stocks.push(Stock {
                    name: format!("S{midx:04}"),
                    prices: mirrored,
                    kind: StockKind::Mirror { of: idx },
                });
            }
            i += 1;
            if i > config.stocks * 4 {
                break; // safety valve; unreachable for sane configs
            }
        }
        StockMarket { stocks }
    }

    /// The paper-sized corpus: 1,067 stocks × 128 days.
    pub fn paper_sized(seed: u64) -> Self {
        Self::generate(&MarketConfig::default(), seed)
    }

    /// Price matrix view.
    pub fn price_series(&self) -> Vec<&[f64]> {
        self.stocks.iter().map(|s| s.prices.as_slice()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corr(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len() as f64;
        let ma = a.iter().sum::<f64>() / n;
        let mb = b.iter().sum::<f64>() / n;
        let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
        let va: f64 = a.iter().map(|x| (x - ma) * (x - ma)).sum();
        let vb: f64 = b.iter().map(|y| (y - mb) * (y - mb)).sum();
        cov / (va.sqrt() * vb.sqrt())
    }

    #[test]
    fn paper_sized_corpus_shape() {
        let m = StockMarket::paper_sized(1);
        assert_eq!(m.stocks.len(), 1067);
        assert!(m.stocks.iter().all(|s| s.prices.len() == 128));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = StockMarket::generate(
            &MarketConfig {
                stocks: 20,
                ..Default::default()
            },
            5,
        );
        let b = StockMarket::generate(
            &MarketConfig {
                stocks: 20,
                ..Default::default()
            },
            5,
        );
        assert_eq!(a.stocks[7].prices, b.stocks[7].prices);
    }

    #[test]
    fn mirrors_are_anti_correlated() {
        let m = StockMarket::generate(
            &MarketConfig {
                stocks: 300,
                mirrored_fraction: 0.3,
                ..Default::default()
            },
            9,
        );
        let mut found = 0;
        let mut sum = 0.0;
        for (i, s) in m.stocks.iter().enumerate() {
            if let StockKind::Mirror { of } = s.kind {
                let c = corr(&s.prices, &m.stocks[of].prices);
                // Every mirror is clearly anti-correlated; the bound is
                // loose because a rare low-variance base stock lets the
                // ±0.05 mirror noise dilute the correlation.
                assert!(c < -0.5, "mirror {i} corr {c}");
                sum += c;
                found += 1;
            }
        }
        assert!(found > 10, "only {found} mirrors generated");
        // In aggregate the anti-correlation is near-perfect.
        let mean = sum / found as f64;
        assert!(mean < -0.95, "mean corr {mean}");
    }

    #[test]
    fn same_sector_stocks_correlate_more_than_cross_sector() {
        let m = StockMarket::generate(
            &MarketConfig {
                stocks: 200,
                sectors: 4,
                mirrored_fraction: 0.0,
                volatility: (0.05, 0.3),
                ..Default::default()
            },
            11,
        );
        let mut same = Vec::new();
        let mut cross = Vec::new();
        for i in 0..m.stocks.len() {
            for j in (i + 1)..m.stocks.len().min(i + 40) {
                let (StockKind::Sectoral { sector: si }, StockKind::Sectoral { sector: sj }) =
                    (m.stocks[i].kind, m.stocks[j].kind)
                else {
                    continue;
                };
                let c = corr(&m.stocks[i].prices, &m.stocks[j].prices);
                if si == sj {
                    same.push(c);
                } else {
                    cross.push(c);
                }
            }
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            avg(&same) > avg(&cross) + 0.15,
            "same {} cross {}",
            avg(&same),
            avg(&cross)
        );
    }

    #[test]
    fn prices_stay_positive() {
        let m = StockMarket::paper_sized(13);
        assert!(m.stocks.iter().all(|s| s.prices.iter().all(|p| *p > 0.0)));
    }
}
