//! # simq-data — workload generators
//!
//! Deterministic, seeded generators for the two data families the paper
//! evaluates on:
//!
//! * [`walk`] — the synthetic random-walk sequences of Section 5
//!   (`x_0 ∈ [20, 99]`, steps in `[−4, 4]`).
//! * [`stocks`] — a structured stock-market simulator replacing the defunct
//!   `ftp.ai.mit.edu` archive (1,067 × 128 by default), with sector
//!   correlation and anti-correlated mirror pairs so similarity joins and
//!   the hedging examples have ground truth to find.

#![warn(missing_docs)]

pub mod stocks;
pub mod walk;

pub use stocks::{MarketConfig, Stock, StockKind, StockMarket};
pub use walk::WalkGenerator;
