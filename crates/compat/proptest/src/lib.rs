//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, the [`strategy::Strategy`] trait
//! with `prop_map`/`prop_flat_map`, numeric range and tuple strategies,
//! [`strategy::Just`], [`prop_oneof!`], `prop::collection::vec`, simple
//! character-class string "regexes" (`"[a-z ]{0,12}"`), the
//! `prop_assert*`/`prop_assume!` macros and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case panics immediately with the values
//!   that were generated where they are cheap to show. Generation is
//!   deterministic per test (the RNG is seeded from the test's module
//!   path and name), so failures reproduce exactly on re-run.
//! * **No persistence files**, no fork, no timeout handling.
//! * Only the strategy combinators listed above exist.

#![warn(missing_docs)]

pub mod test_runner {
    //! Configuration and the deterministic test RNG.

    /// How many cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful (non-rejected) cases required.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a test case did not complete.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is not counted.
        Reject,
    }

    /// Deterministic SplitMix64 generator seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an arbitrary string (FNV-1a), so every property has
        /// its own reproducible stream.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// The next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// A uniform draw from `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and the combinators the workspace uses.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    ///
    /// Unlike real proptest there is no value tree and no shrinking: a
    /// strategy is just a deterministic function of the RNG state.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// from it (dependent generation).
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    /// Uniform choice between boxed alternatives ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// A union of the given alternatives; must be non-empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].new_value(rng)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty f64 range strategy");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    // i128 keeps narrow signed spans from sign-extending
                    // into a bogus modulus (u128 covers u64's full range).
                    let span = (self.end as i128).wrapping_sub(self.start as i128) as u128 as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty integer range strategy");
                    let span = (hi as i128).wrapping_sub(lo as i128) as u128 as u64;
                    if span == u64::MAX {
                        return lo.wrapping_add(rng.next_u64() as $t);
                    }
                    lo.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);

    /// String strategies from a restricted regex: a sequence of atoms,
    /// each a literal character or a character class `[a-z 0-9_]`,
    /// optionally followed by a `{lo,hi}` / `{n}` repetition.
    impl Strategy for &str {
        type Value = String;
        fn new_value(&self, rng: &mut TestRng) -> String {
            generate_pattern(self, rng)
        }
    }

    fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|c| *c == ']')
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"))
                    + i;
                let class = &chars[i + 1..close];
                i = close + 1;
                expand_class(class, pattern)
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|c| *c == '}')
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("repetition lower bound"),
                        hi.trim().parse().expect("repetition upper bound"),
                    ),
                    None => {
                        let n: usize = body.trim().parse().expect("repetition count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..n {
                let c = alphabet[rng.below(alphabet.len() as u64) as usize];
                out.push(c);
            }
        }
        out
    }

    fn expand_class(class: &[char], pattern: &str) -> Vec<char> {
        let mut alphabet = Vec::new();
        let mut j = 0;
        while j < class.len() {
            if j + 2 < class.len() && class[j + 1] == '-' {
                let (a, b) = (class[j] as u32, class[j + 2] as u32);
                assert!(a <= b, "descending class range in pattern {pattern:?}");
                for c in a..=b {
                    alphabet.push(char::from_u32(c).expect("valid class range"));
                }
                j += 3;
            } else {
                alphabet.push(class[j]);
                j += 1;
            }
        }
        alphabet
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A half-open size range for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A `Vec` of `size` elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.elem.new_value(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The crate root under the conventional `prop::` alias
    /// (`prop::collection::vec`, …).
    pub use crate as prop;
}

/// Defines property tests. See the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{@funcs ($cfg); $($rest)*}
    };
    (@funcs ($cfg:expr); ) => {};
    (@funcs ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut __ran: u32 = 0;
            let mut __attempts: u32 = 0;
            let __max_attempts = __cfg.cases.saturating_mul(16).max(16);
            while __ran < __cfg.cases {
                assert!(
                    __attempts < __max_attempts,
                    "property {} rejected too many cases ({} attempts for {} cases)",
                    stringify!($name),
                    __attempts,
                    __cfg.cases,
                );
                __attempts += 1;
                $(let $pat = $crate::strategy::Strategy::new_value(&($strat), &mut __rng);)+
                // The closure gives `prop_assume!` an early-exit channel
                // (`return Err(Reject)`) without aborting the whole test.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        { $body }
                        ::std::result::Result::Ok(())
                    })();
                if __outcome.is_ok() {
                    __ran += 1;
                }
            }
        }
        $crate::proptest!{@funcs ($cfg); $($rest)*}
    };
    ($($rest:tt)*) => {
        $crate::proptest!{@funcs ($crate::test_runner::ProptestConfig::default()); $($rest)*}
    };
}

/// Uniform choice between strategy alternatives of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$(::std::boxed::Box::new($strat)),+])
    };
}

/// Asserts a condition inside a property, with an optional custom message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            panic!("property assertion failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            panic!(
                "property assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)*),
            );
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!(
                "property assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r,
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!(
                "property assertion failed: {} == {}\n  left: {:?}\n right: {:?}\n {}",
                stringify!($left), stringify!($right), l, r, format!($($fmt)*),
            );
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            panic!(
                "property assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l,
            );
        }
    }};
}

/// Rejects the current case (it is regenerated and not counted).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in -5.0f64..5.0, n in 1usize..10) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_sizes(v in prop::collection::vec(0u32..100, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|x| *x < 100));
        }

        #[test]
        fn flat_map_links_lengths(pair in prop::collection::vec(0.0f64..1.0, 1..9)
            .prop_flat_map(|x| {
                let n = x.len();
                (Just(x), prop::collection::vec(0.0f64..1.0, n))
            }))
        {
            let (a, b) = pair;
            prop_assert_eq!(a.len(), b.len());
        }

        #[test]
        fn string_patterns(s in "[ab]{2,5}", t in "[a-c ]{0,8}") {
            prop_assert!(s.len() >= 2 && s.len() <= 5);
            prop_assert!(s.chars().all(|c| c == 'a' || c == 'b'));
            prop_assert!(t.len() <= 8);
            prop_assert!(t.chars().all(|c| ('a'..='c').contains(&c) || c == ' '));
        }

        #[test]
        fn oneof_picks_arms(v in prop_oneof![Just(1u8), Just(2u8), Just(3u8)]) {
            prop_assert!((1..=3).contains(&v));
        }

        #[test]
        fn assume_rejects(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::from_name("x");
        let mut b = crate::test_runner::TestRng::from_name("x");
        let s = crate::collection::vec(0.0f64..1.0, 3..9);
        for _ in 0..10 {
            assert_eq!(s.new_value(&mut a), s.new_value(&mut b));
        }
    }
}
