//! Offline stand-in for the `rand` crate.
//!
//! Implements exactly the subset this workspace uses — seeded
//! [`rngs::StdRng`] construction and [`Rng::gen_range`] over integer and
//! floating-point ranges — on top of a SplitMix64 core. Deterministic for a fixed seed,
//! but the stream differs from the real `rand::rngs::StdRng` (ChaCha12);
//! fixtures in this workspace only require self-consistency.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator core: the single source of entropy.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods over any [`RngCore`], mirroring
/// `rand::Rng`.
pub trait Rng: RngCore {
    /// A value uniformly distributed over `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p` (which must lie in `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges a value can be sampled from, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// A uniform draw from `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        // The half-open draw is dense enough that the inclusive endpoint
        // is a measure-zero distinction for every caller in this tree.
        lo + unit_f64(rng) * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8);

macro_rules! signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                // The span is computed in i128 so narrow types whose full
                // range exceeds their own MAX (e.g. i32::MIN..i32::MAX)
                // don't sign-extend into a bogus modulus.
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

signed_sample_range!(isize, i64, i32, i16, i8);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    ///
    /// Small, fast, passes the statistical bar every fixture here needs
    /// (uniform starts, uniform steps); not cryptographic.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let different = (0..10).any(|_| a.gen_range(0u64..1000) != c.gen_range(0u64..1000));
        assert!(different);
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = r.gen_range(-4.0f64..=4.0);
            assert!((-4.0..=4.0).contains(&f));
            let i = r.gen_range(3usize..10);
            assert!((3..10).contains(&i));
            let s = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&s));
        }
    }

    #[test]
    fn full_width_signed_ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            // Spans wider than the type's MAX must not sign-extend.
            let v = r.gen_range(i32::MIN..=i32::MAX - 1);
            assert!(v < i32::MAX);
            let w = r.gen_range(i8::MIN..i8::MAX);
            assert!(w < i8::MAX);
            let x = r.gen_range(-1_000_000_000i32..=1_000_000_000);
            assert!((-1_000_000_000..=1_000_000_000).contains(&x));
        }
    }

    #[test]
    fn floats_cover_the_range() {
        let mut r = StdRng::seed_from_u64(2);
        let draws: Vec<f64> = (0..1000).map(|_| r.gen_range(0.0f64..1.0)).collect();
        assert!(draws.iter().any(|v| *v < 0.1));
        assert!(draws.iter().any(|v| *v > 0.9));
    }
}
