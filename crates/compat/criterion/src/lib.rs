//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset the workspace benches use: benchmark groups with
//! `sample_size`/`warm_up_time`/`measurement_time`, `bench_function`,
//! `bench_with_input` with [`BenchmarkId`], `Bencher::iter`, [`black_box`]
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement model: one warm-up phase, then timed batches until the
//! measurement window closes; the mean wall-clock per iteration is printed
//! as `group/function/param … time: <mean>`. There are no statistics,
//! plots, baselines or HTML reports. Passing `--test` (as `cargo test
//! --benches` does) runs each registered benchmark exactly once so CI can
//! smoke-test the targets cheaply.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The top-level harness handle passed to benchmark functions.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            test_mode: self.test_mode,
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        let mut group = self.benchmark_group(id.clone());
        group.run(id, f);
        group.finish();
    }
}

/// Identifies one benchmark within a group: a function name plus a
/// parameter rendered with `Display`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id `"{name}/{param}"`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_string() }
    }
}

/// A group of benchmarks sharing timing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    test_mode: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Target number of samples (kept for API compatibility; the stand-in
    /// only uses it to scale the measurement batches).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Duration of the warm-up phase.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Duration of the measurement phase.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        self.run(id.id, f);
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<P: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &P,
        mut f: impl FnMut(&mut Bencher, &P),
    ) {
        self.run(id.id, |b| f(b, input));
    }

    fn run(&mut self, id: String, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            warm_up: if self.test_mode {
                Duration::ZERO
            } else {
                self.warm_up
            },
            measurement: if self.test_mode {
                Duration::ZERO
            } else {
                self.measurement
            },
            mean: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        if self.test_mode {
            println!("{}/{id}: ok (test mode, 1 iteration)", self.name);
        } else {
            println!(
                "{}/{id}  time: {:>12}   ({} iterations)",
                self.name,
                format_duration(bencher.mean),
                bencher.iters,
            );
        }
    }

    /// Ends the group (printing is incremental, so this is a no-op kept
    /// for API compatibility).
    pub fn finish(self) {}
}

/// Runs the closure under timing; see [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    mean: Duration,
    iters: u64,
}

impl Bencher {
    /// Measures the mean wall-clock time of `f`.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Always run once (correctness smoke + test mode).
        black_box(f());
        if self.measurement.is_zero() {
            self.mean = Duration::ZERO;
            self.iters = 1;
            return;
        }
        let warm_end = Instant::now() + self.warm_up;
        while Instant::now() < warm_end {
            black_box(f());
        }
        let mut iters: u64 = 0;
        let start = Instant::now();
        let measure_end = start + self.measurement;
        while Instant::now() < measure_end {
            black_box(f());
            iters += 1;
        }
        let elapsed = start.elapsed();
        self.iters = iters.max(1);
        self.mean = elapsed / u32::try_from(self.iters).unwrap_or(u32::MAX);
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Collects benchmark functions into one registration function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_smoke() {
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("g");
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut calls = 0usize;
        group.bench_function("f", |b| b.iter(|| calls += 1));
        let input = 3usize;
        group.bench_with_input(BenchmarkId::new("g2", input), &input, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        assert!(calls >= 1);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 12).id, "f/12");
    }
}
