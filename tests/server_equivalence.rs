//! The network service's equivalence contract: results served over the
//! wire protocol are **bitwise identical** to local execution on the
//! same database — for plain queries, prepared statements, streaming
//! cursors and inserts, from one client or many concurrent ones, and
//! for reads racing writes (which must observe only complete acked
//! generations). Every `f64` travels as its bit pattern, so comparing
//! with [`common::assert_output_values_bitwise_equal`] is exact.

mod common;

use common::*;
use similarity_queries::prelude::*;
use similarity_queries::query::QueryOutput;
use std::net::SocketAddr;

/// One relation, two identically built databases: the caller keeps the
/// local oracle, the server gets the twin.
fn oracle_and_server(rel: fn() -> SeriesRelation) -> (Database, Server, SocketAddr) {
    let oracle = indexed_db(rel());
    let server = Server::bind("127.0.0.1:0", indexed_db(rel())).expect("server binds");
    let addr = server.local_addr();
    (oracle, server, addr)
}

fn walks() -> SeriesRelation {
    walk_relation("walks", 42, 300, 64)
}

/// The mixed read workload every equivalence test draws from.
const QUERIES: &[&str] = &[
    "FIND SIMILAR TO ROW 0 IN walks EPSILON 2.0",
    "FIND SIMILAR TO ROW 17 IN walks USING mavg(8) ON BOTH EPSILON 1.5",
    "FIND 5 NEAREST TO ROW 3 IN walks",
    "FIND 3 NEAREST TO ROW 250 IN walks USING reverse",
    "FIND SIMILAR TO ROW 9 IN walks USING scale(2) EPSILON 4.0",
    "FIND PAIRS IN walks EPSILON 0.5 METHOD c",
    "EXPLAIN FIND 2 NEAREST TO ROW 1 IN walks",
    "FIND SIMILAR TO ROW 40 IN walks EPSILON 99.0 FORCE SCAN",
];

#[test]
fn remote_results_bitwise_equal_to_local() {
    let (oracle, server, addr) = oracle_and_server(walks);
    let mut client = Client::connect(addr).expect("client connects");
    for query in QUERIES {
        let local = execute(&oracle, query).expect("local query runs");
        let remote = client.query(query).expect("remote query runs");
        assert_output_values_bitwise_equal(&local.output, &remote.output, query);
        assert_eq!(
            format!("{:?}", local.plan.access),
            remote.access,
            "{query}: access path diverged"
        );
    }
    // Errors come back structured, with the local error's message.
    let local_err = execute(&oracle, "FIND 2 NEAREST TO ROW 0 IN nope").unwrap_err();
    let remote_err = client
        .query("FIND 2 NEAREST TO ROW 0 IN nope")
        .expect_err("unknown relation fails remotely too");
    match remote_err {
        ClientError::Remote { message, .. } => assert_eq!(message, local_err.to_string()),
        other => panic!("expected a structured server error, got {other:?}"),
    }
    client.goodbye().expect("orderly close");
    server.shutdown();
}

#[test]
fn concurrent_clients_all_get_oracle_results() {
    let (oracle, server, addr) = oracle_and_server(walks);
    let handles: Vec<_> = (0..4)
        .map(|offset| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("client connects");
                // Each client walks the workload from its own offset, so
                // at any instant the server is running a mix of shapes.
                let mut outputs = Vec::new();
                for round in 0..3 {
                    for i in 0..QUERIES.len() {
                        let query = QUERIES[(i + offset + round) % QUERIES.len()];
                        let remote = client.query(query).expect("remote query runs");
                        outputs.push((query, remote.output));
                    }
                }
                client.goodbye().expect("orderly close");
                outputs
            })
        })
        .collect();
    for handle in handles {
        for (query, output) in handle.join().expect("client thread joins") {
            let local = execute(&oracle, query).expect("local query runs");
            assert_output_values_bitwise_equal(&local.output, &output, query);
        }
    }
    server.shutdown();
}

#[test]
fn prepared_statements_match_local_prepare_bind_execute() {
    let (oracle, server, addr) = oracle_and_server(walks);
    let session = Session::new(&oracle);
    let text = "FIND ? NEAREST TO ROW $r IN walks";
    let local_prepared = session.prepare(text).expect("local prepare");

    let mut client = Client::connect(addr).expect("client connects");
    let signature = client.prepare("knn", text).expect("remote prepare");
    assert_eq!(signature.len(), local_prepared.signature().len());

    for (k, row) in [(1u64, 5u64), (4, 120), (7, 5), (2, 299)] {
        let bound = local_prepared
            .bind_all(
                &[Value::Number(k as f64)],
                &[("r", Value::Number(row as f64))],
            )
            .expect("local bind");
        let local = session.execute(&bound).expect("local exec");
        let remote = client
            .exec(
                "knn",
                vec![Value::Number(k as f64)],
                vec![("r".to_string(), Value::Number(row as f64))],
            )
            .expect("remote exec");
        assert_output_values_bitwise_equal(
            &local.output,
            &remote.output,
            &format!("exec knn {k} r={row}"),
        );
    }
    // The registry lists what this connection prepared, name-ordered.
    let listed = client.list_prepared().expect("list");
    assert_eq!(listed, vec![("knn".to_string(), text.to_string())]);
    // Binding errors are structured, not fatal to the connection.
    let err = client
        .exec("knn", vec![], vec![])
        .expect_err("missing arguments fail");
    assert!(matches!(err, ClientError::Remote { .. }), "{err:?}");
    client.ping().expect("connection survives a bind error");
    client.goodbye().expect("orderly close");
    server.shutdown();
}

#[test]
fn acked_insert_is_visible_to_other_connections_and_matches_local() {
    let (mut oracle, server, addr) = oracle_and_server(walks);
    let mut gen = WalkGenerator::new(777);
    let rows: Vec<(String, Vec<f64>)> = (0..6).map(|i| (format!("N{i}"), gen.series(64))).collect();

    let mut writer = Client::connect(addr).expect("writer connects");
    let report = writer.insert("walks", rows.clone()).expect("remote insert");
    assert_eq!(report.ids.len(), rows.len(), "every row acked");
    assert!(report.failed.is_empty(), "{:?}", report.failed);

    // The oracle applies the identical batch locally.
    let local_report = oracle
        .insert_batch("walks", rows.clone())
        .expect("local insert");
    assert_eq!(
        report.ids,
        local_report
            .acked
            .iter()
            .map(|(_, r)| r.id)
            .collect::<Vec<_>>(),
        "same ids assigned"
    );

    // A *different* connection, opened after the ack, must see the rows
    // bitwise-identically to local execution.
    let mut reader = Client::connect(addr).expect("reader connects");
    for (name, series) in &rows {
        let literal: Vec<String> = series.iter().map(|v| format!("{v:?}")).collect();
        let query = format!("FIND 1 NEAREST TO [{}] IN walks", literal.join(", "));
        let local = execute(&oracle, &query).expect("local query runs");
        let remote = reader.query(&query).expect("remote query runs");
        assert_output_values_bitwise_equal(&local.output, &remote.output, &query);
        match &remote.output {
            QueryOutput::Hits(hits) => assert_eq!(&hits[0].name, name, "inserted row is nearest"),
            other => panic!("expected hits, got {other:?}"),
        }
    }
    writer.goodbye().expect("orderly close");
    reader.goodbye().expect("orderly close");
    server.shutdown();
}

#[test]
fn reads_racing_writes_observe_only_complete_prefixes() {
    let (mut oracle, server, addr) = oracle_and_server(walks);
    // The writer inserts clones of one probe series, nudged by i/1000:
    // an epsilon ball around the probe catches exactly the inserted
    // rows, so what a racing reader sees *is* the visible write set.
    let probe = WalkGenerator::new(31).series(64);
    fn nudged(base: &[f64], i: usize) -> Vec<f64> {
        base.iter().map(|v| v + i as f64 * 1e-3).collect()
    }
    let literal: Vec<String> = probe.iter().map(|v| format!("{v:?}")).collect();
    let ball = format!(
        "FIND SIMILAR TO [{}] IN walks EPSILON 0.5",
        literal.join(", ")
    );

    let total = 24usize;
    let probe_for_writer = probe.clone();
    let writer = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("writer connects");
        for batch in 0..total / 2 {
            let rows = vec![
                (
                    format!("P{:02}", 2 * batch),
                    nudged(&probe_for_writer, 2 * batch),
                ),
                (
                    format!("P{:02}", 2 * batch + 1),
                    nudged(&probe_for_writer, 2 * batch + 1),
                ),
            ];
            let report = client.insert("walks", rows).expect("insert acked");
            assert_eq!(report.ids.len(), 2);
        }
        client.goodbye().expect("orderly close");
    });

    let mut reader = Client::connect(addr).expect("reader connects");
    let mut seen_max = 0usize;
    while seen_max < total {
        let remote = reader.query(&ball).expect("racing read runs");
        let QueryOutput::Hits(hits) = &remote.output else {
            panic!("expected hits");
        };
        let mut indices: Vec<usize> = hits
            .iter()
            .filter(|h| h.name.starts_with('P'))
            .map(|h| h.name[1..].parse().expect("P-names are P<index>"))
            .collect();
        indices.sort_unstable();
        // Only complete acked prefixes are visible: no gaps, no torn
        // batches, and visibility never goes backwards on one reader.
        assert_eq!(
            indices,
            (0..indices.len()).collect::<Vec<_>>(),
            "racing read saw a torn write set"
        );
        assert!(indices.len() >= seen_max, "visibility went backwards");
        seen_max = indices.len();
        if writer.is_finished() && seen_max < total {
            // The writer is done; everything it acked must be visible
            // on the very next read.
            let settled = reader.query(&ball).expect("settled read runs");
            let QueryOutput::Hits(hits) = &settled.output else {
                panic!("expected hits");
            };
            let visible = hits.iter().filter(|h| h.name.starts_with('P')).count();
            assert_eq!(visible, total, "acked writes missing after writer finished");
            seen_max = total;
        }
    }
    writer.join().expect("writer thread joins");

    // Settled state matches an oracle that applied the same writes.
    for batch in 0..total / 2 {
        oracle
            .insert_batch(
                "walks",
                vec![
                    (format!("P{:02}", 2 * batch), nudged(&probe, 2 * batch)),
                    (
                        format!("P{:02}", 2 * batch + 1),
                        nudged(&probe, 2 * batch + 1),
                    ),
                ],
            )
            .expect("local insert");
    }
    let local = execute(&oracle, &ball).expect("local query runs");
    let remote = reader.query(&ball).expect("settled read runs");
    assert_output_values_bitwise_equal(&local.output, &remote.output, &ball);
    reader.goodbye().expect("orderly close");
    server.shutdown();
}

#[test]
fn full_cursor_drain_matches_local_and_partial_reads_fewer_nodes() {
    let (oracle, server, addr) = oracle_and_server(walks);
    let query = "FIND SIMILAR TO ROW 0 IN walks EPSILON 60.0";

    // Local oracle cursor: full drain, in traversal order.
    let session = Session::new(&oracle);
    let mut local_hits = Vec::new();
    let mut cursor = session.cursor_text(query).expect("local cursor opens");
    for hit in cursor.by_ref() {
        local_hits.push(hit);
    }
    let local_stats = cursor.stats();
    assert!(
        local_hits.len() > 8,
        "need a multi-chunk result, got {}",
        local_hits.len()
    );

    // Remote full drain with a generous window per fetch.
    let mut client = Client::connect(addr).expect("client connects");
    let mut remote = client.open_cursor(query, 7).expect("remote cursor opens");
    let mut remote_hits = remote.take_hits();
    while !remote.is_done() {
        remote.fetch(7).expect("window grant honored");
        remote_hits.extend(remote.take_hits());
    }
    assert_eq!(local_hits.len(), remote_hits.len(), "same row count");
    for (l, r) in local_hits.iter().zip(&remote_hits) {
        assert_eq!(l.id, r.id);
        assert_eq!(l.name, r.name);
        assert_eq!(l.distance.to_bits(), r.distance.to_bits());
    }
    let full_stats = remote.close().expect("drained cursor closes");
    assert_eq!(
        full_stats.nodes_visited, local_stats.nodes_visited,
        "full drain does the same index work as the local cursor"
    );

    // Partial consumption: three rows, then close. The lazy pull must
    // have read strictly fewer tree nodes end-to-end.
    let mut partial = client.open_cursor(query, 3).expect("remote cursor opens");
    let first = partial.take_hits();
    assert_eq!(first.len(), 3.min(local_hits.len()));
    assert!(!partial.is_done(), "a 3-row window must suspend");
    let partial_stats = partial.close().expect("suspended cursor closes");
    assert!(
        partial_stats.nodes_visited < full_stats.nodes_visited,
        "partial consumption ({} nodes) must read strictly fewer nodes than a full drain ({})",
        partial_stats.nodes_visited,
        full_stats.nodes_visited
    );
    client.goodbye().expect("orderly close");
    server.shutdown();
}
