//! The near-zero-cost-when-off guard for span tracing.
//!
//! Instrumented call sites stay in release builds, so the disabled path
//! (`span::span` returning an inert guard after one relaxed atomic load
//! and one thread-local read) must be negligible against real query
//! work. This test pins that as a ratio rather than an absolute time —
//! robust across debug/release builds and noisy CI machines:
//!
//! * measure the per-call cost of a disabled span over a large batch,
//! * measure the median time of a representative query,
//! * assert a *generous* per-query span budget (far above what the
//!   executor actually opens) still costs < 2% of the query.
//!
//! Medians over repeated trials keep scheduler noise out; the span
//! measurement is the cheap side of the inequality, so noise there only
//! makes the test stricter.

mod common;

use common::{corpus, relation_with};
use similarity_queries::obs::span;
use similarity_queries::prelude::*;
use std::time::Instant;

/// Spans the executor actually opens per query, with headroom: a range
/// query opens 4 (plan, descend, verify, merge), kNN 6, a join 2. Cursor
/// pulls open one span each, but every pull also does per-row
/// verification work, so the per-query ratio bounds that case too.
const SPAN_BUDGET_PER_QUERY: u64 = 8;

/// Median of `trials` runs of `f`, in nanoseconds.
fn median_ns<T>(trials: usize, mut f: impl FnMut() -> T) -> u64 {
    std::hint::black_box(f()); // warm-up
    let mut times: Vec<u64> = (0..trials)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

#[test]
fn disabled_spans_cost_under_two_percent_of_query_time() {
    span::set_tracing(false);
    let _ = span::take_records();

    // The cheap side: per-call cost of a span that records nothing.
    const CALLS: u64 = 100_000;
    let batch_ns = median_ns(5, || {
        for i in 0..CALLS {
            let guard = span::span("overhead.probe");
            guard.note("i", i);
        }
    });
    let per_call_ns = batch_ns as f64 / CALLS as f64;

    // The work side: a representative indexed range query.
    let series = corpus(23, 200, 64);
    let rel = relation_with(&series, FeatureScheme::paper_default());
    let mut db = Database::new();
    db.add_relation_indexed(rel);
    let query_ns = median_ns(15, || {
        execute(&db, "FIND SIMILAR TO ROW 0 IN r EPSILON 3.0").unwrap()
    });

    let budget_ns = per_call_ns * SPAN_BUDGET_PER_QUERY as f64;
    let ratio = budget_ns / query_ns as f64;
    assert!(
        ratio < 0.02,
        "disabled-span overhead {budget_ns:.1}ns ({SPAN_BUDGET_PER_QUERY} spans × \
         {per_call_ns:.2}ns/call) is {:.3}% of the {query_ns}ns query — tracing is no \
         longer near-zero cost when off",
        ratio * 100.0
    );

    // And the off path must collect nothing at all.
    assert!(
        span::take_records().is_empty(),
        "disabled spans recorded data"
    );
}
