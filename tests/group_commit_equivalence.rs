//! The serial-equivalence contract of the concurrent grouped write path:
//! `Database::insert_batch` — one WAL group append per touched shard,
//! per-shard writer threads under `Parallelism` > 1 — produces a database
//! **bitwise identical** to calling `Database::insert_into` once per row
//! in input order. Checked across the {1, 4} threads × {1, 4} shards
//! matrix: id/shard assignment, raw row bits, and a query battery
//! executed serially and at 4 threads against both databases.
//!
//! Also pinned here: the group-commit sync accounting (at most one sync
//! per touched shard), the generation-stamped `ReadView` (readers see the
//! catalog exactly as of the generation they captured, no matter what
//! writers do afterwards), and the `set_group_commit` routing of
//! single-record inserts through per-shard write groups.

mod common;

use common::assert_outputs_bitwise_equal;
use similarity_queries::prelude::*;
use similarity_queries::query::execute;
use similarity_queries::storage::FailingStorage;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const SERIES_LEN: usize = 32;
const BASE_ROWS: usize = 30;
const BATCH_ROWS: usize = 40;

fn unique_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "simq-group-commit-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed),
    ));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    dir
}

/// The deterministic batch every configuration inserts.
fn batch() -> Vec<(String, Vec<f64>)> {
    let mut gen = WalkGenerator::new(4242);
    (0..BATCH_ROWS)
        .map(|i| (format!("B{i:03}"), gen.series(SERIES_LEN)))
        .collect()
}

/// A fresh database: seeded indexed relation `r`, `shards` shards,
/// `threads` worker threads. No WAL unless the test attaches one.
fn fresh_db(shards: usize, threads: usize) -> Database {
    let mut gen = WalkGenerator::new(77);
    let mut rel = SeriesRelation::new("r", SERIES_LEN, FeatureScheme::paper_default());
    for i in 0..BASE_ROWS {
        rel.insert(format!("S{i:04}"), gen.series(SERIES_LEN))
            .unwrap();
    }
    let mut db = Database::new();
    db.add_relation_indexed(rel);
    if shards > 1 {
        db.shard_relation("r", shards).unwrap();
    }
    db.set_parallelism(if threads > 1 {
        Parallelism::Fixed(threads)
    } else {
        Parallelism::Serial
    });
    db
}

/// Asserts the two databases hold bitwise-identical rows and answer a
/// query battery bitwise-identically, serially and at 4 threads.
fn assert_databases_bitwise_equal(got: &mut Database, want: &mut Database, what: &str) {
    let queries = [
        "FIND SIMILAR TO ROW 0 IN r EPSILON 1.5".to_string(),
        "FIND SIMILAR TO ROW 5 IN r USING mavg(3) ON BOTH EPSILON 2.0".to_string(),
        format!("FIND 7 NEAREST TO NAME B{:03} IN r", BATCH_ROWS - 1),
        "FIND PAIRS IN r EPSILON 1.0 METHOD d".to_string(),
    ];
    {
        let g = got.relation("r").unwrap();
        let w = want.relation("r").unwrap();
        assert_eq!(g.row_count(), w.row_count(), "{what}: row count");
        assert_eq!(
            g.shard_row_counts(),
            w.shard_row_counts(),
            "{what}: shard occupancy"
        );
        for row in w.rows() {
            let other = g
                .row(row.id)
                .unwrap_or_else(|| panic!("{what}: id {} missing", row.id));
            assert_eq!(other.name, row.name, "{what}: name of id {}", row.id);
            for (a, b) in other.raw.iter().zip(&row.raw) {
                assert_eq!(a.to_bits(), b.to_bits(), "{what}: bits of id {}", row.id);
            }
        }
    }
    for threads in [Parallelism::Serial, Parallelism::Fixed(4)] {
        got.set_parallelism(threads);
        want.set_parallelism(threads);
        for q in &queries {
            let g = execute(got, q).unwrap();
            let w = execute(want, q).unwrap();
            assert_outputs_bitwise_equal(&g, &w, &format!("{what}: {q} @ {threads}"));
        }
    }
}

/// The tentpole matrix: batch insertion at {1, 4} threads × {1, 4} shards
/// is bitwise identical to the serial insert_into loop.
#[test]
fn batch_insert_matches_serial_loop_bitwise() {
    for shards in [1usize, 4] {
        for threads in [1usize, 4] {
            let what = format!("shards {shards} × threads {threads}");
            let mut serial = fresh_db(shards, 1);
            let mut serial_reports = Vec::new();
            for (name, series) in batch() {
                serial_reports.push(serial.insert_into("r", name, series).unwrap());
            }
            let mut batched = fresh_db(shards, threads);
            let report = batched.insert_batch("r", batch()).unwrap();
            assert_eq!(report.acked.len(), BATCH_ROWS, "{what}: all rows ack");
            assert!(report.failed.is_empty(), "{what}: no failures");
            assert_eq!(report.wal_records, 0, "{what}: no WAL attached");
            assert_eq!(report.wal_syncs, 0, "{what}: no WAL attached");
            for (k, (&(idx, got), want)) in report.acked.iter().zip(&serial_reports).enumerate() {
                assert_eq!(idx, k, "{what}: acked in input order");
                assert_eq!(got.id, want.id, "{what}: id of row {k}");
                assert_eq!(got.shard, want.shard, "{what}: shard of row {k}");
                assert_eq!(
                    got.nodes_built, want.nodes_built,
                    "{what}: tree maintenance of row {k}"
                );
            }
            let serial_nodes: u64 = serial_reports.iter().map(|r| r.nodes_built).sum();
            assert_eq!(report.nodes_built, serial_nodes, "{what}: nodes_built");
            assert_databases_bitwise_equal(&mut batched, &mut serial, &what);
        }
    }
}

/// With a WAL attached, a batch pays at most one sync per touched shard
/// (against one per row for the serial loop), and everything it
/// acknowledged survives reopen.
#[test]
fn batch_insert_groups_syncs_per_shard_and_is_durable() {
    for (shards, threads) in [(1usize, 1usize), (4, 4)] {
        let what = format!("shards {shards} × threads {threads}");
        let dir = unique_dir(&format!("s{shards}t{threads}"));
        let mut db = fresh_db(shards, threads);
        db.attach_wal(&dir).unwrap();
        let report = db.insert_batch("r", batch()).unwrap();
        assert_eq!(report.acked.len(), BATCH_ROWS, "{what}");
        assert_eq!(report.wal_records, BATCH_ROWS as u64, "{what}");
        assert!(
            report.wal_syncs <= shards as u64,
            "{what}: {} syncs for {} shards",
            report.wal_syncs,
            shards
        );
        assert_eq!(
            report.wal_syncs, report.shards_touched as u64,
            "{what}: one sync per touched shard"
        );
        let expected: Vec<(u64, String, Vec<f64>)> = report
            .acked
            .iter()
            .zip(batch())
            .map(|(&(_, r), (name, series))| (r.id, name, series))
            .collect();
        drop(db);
        let (reopened, _replay) = Database::open_durable(&dir).unwrap();
        let stored = reopened.relation("r").unwrap();
        assert_eq!(stored.row_count(), BASE_ROWS + BATCH_ROWS, "{what}");
        for (id, name, series) in &expected {
            let row = stored
                .row(*id)
                .unwrap_or_else(|| panic!("{what}: acked id {id} lost"));
            assert_eq!(&row.name, name, "{what}: name of id {id}");
            for (a, b) in row.raw.iter().zip(series) {
                assert_eq!(a.to_bits(), b.to_bits(), "{what}: bits of id {id}");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A `ReadView` is frozen at its generation: writers mutating the live
/// database afterwards (batch inserts included) never shift its answers,
/// and a fresh view sees the new rows.
#[test]
fn read_view_pins_a_catalog_generation() {
    let mut db = fresh_db(4, 4);
    let view = db.read_view();
    let gen_before = db.generation();
    assert_eq!(view.generation(), gen_before);
    let before = execute(view.database(), "FIND 5 NEAREST TO ROW 0 IN r").unwrap();

    let report = db.insert_batch("r", batch()).unwrap();
    assert_eq!(report.acked.len(), BATCH_ROWS);
    assert!(db.generation() > gen_before, "writer bumps the generation");

    // The old view still answers from the pre-insert catalog…
    assert_eq!(view.generation(), gen_before, "view generation is frozen");
    assert_eq!(
        view.database().relation("r").unwrap().row_count(),
        BASE_ROWS,
        "view rows are frozen"
    );
    let after = execute(view.database(), "FIND 5 NEAREST TO ROW 0 IN r").unwrap();
    assert_outputs_bitwise_equal(&before, &after, "view answers are frozen");

    // …while a fresh view sees everything the batch inserted.
    let fresh = db.read_view();
    assert_eq!(fresh.generation(), db.generation());
    assert_eq!(
        fresh.database().relation("r").unwrap().row_count(),
        BASE_ROWS + BATCH_ROWS
    );

    // Views are Send + Sync: reader threads can hold them while the
    // writer keeps inserting into the live database.
    std::thread::scope(|scope| {
        let view_ref = &view;
        let readers: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(move || {
                    execute(view_ref.database(), "FIND 5 NEAREST TO ROW 0 IN r").unwrap()
                })
            })
            .collect();
        db.insert_into("r", "straggler", batch()[0].1.clone())
            .unwrap();
        for reader in readers {
            let got = reader.join().unwrap();
            assert_outputs_bitwise_equal(&before, &got, "concurrent reader on a frozen view");
        }
    });
}

/// `set_group_commit` routes single-record inserts through per-shard
/// write groups without changing results or durability: inserts are
/// applied identically and survive reopen.
#[test]
fn group_commit_flag_preserves_results_and_durability() {
    let dir = unique_dir("flag");
    let mut grouped = fresh_db(4, 1);
    grouped.attach_wal(&dir).unwrap();
    grouped.set_group_commit(true);
    assert!(grouped.group_commit());
    let mut plain = fresh_db(4, 1);
    let mut expected = Vec::new();
    for (name, series) in batch() {
        let g = grouped.insert_into("r", &name, series.clone()).unwrap();
        let p = plain.insert_into("r", &name, series.clone()).unwrap();
        assert_eq!(g.id, p.id);
        assert_eq!(g.shard, p.shard);
        assert_eq!(g.nodes_built, p.nodes_built);
        assert!(g.wal_appended);
        expected.push((g.id, name, series));
    }
    assert_databases_bitwise_equal(&mut grouped, &mut plain, "group-commit flag");
    drop(grouped);
    let (reopened, _replay) = Database::open_durable(&dir).unwrap();
    let stored = reopened.relation("r").unwrap();
    for (id, name, series) in &expected {
        let row = stored
            .row(*id)
            .unwrap_or_else(|| panic!("grouped id {id} lost"));
        assert_eq!(&row.name, name);
        for (a, b) in row.raw.iter().zip(series) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A batch whose WAL group append fails still consumes its ids — in the
/// single-relation form exactly as in the sharded one. The failed append
/// can leave a durable prefix of complete records on disk (a sync that
/// died after a partial write), which replay will apply after a crash;
/// were next_id left unchanged, a later insert would reuse those ids and
/// collide at replay.
#[test]
fn failed_batch_consumes_its_ids_in_both_relation_forms() {
    for shards in [1usize, 4] {
        let what = format!("shards {shards}");
        let dir = unique_dir(&format!("failed-ids-s{shards}"));
        let mut db = fresh_db(shards, 1);
        // A zero-byte budget: every append fails without writing, after
        // validation and id assignment.
        db.attach_wal_with_sink(&dir, FailingStorage::new(0))
            .unwrap();
        let before = db.relation("r").unwrap().next_id();
        db.insert_batch("r", batch())
            .expect_err("every shard's group append fails");
        assert_eq!(
            db.relation("r").unwrap().next_id(),
            before + BATCH_ROWS as u64,
            "{what}: failed batch must consume its ids"
        );
        // The single-record path defends identically.
        let (name, series) = batch().remove(0);
        db.insert_into("r", name, series)
            .expect_err("append still failing");
        assert_eq!(
            db.relation("r").unwrap().next_id(),
            before + BATCH_ROWS as u64 + 1,
            "{what}: failed insert_into must consume its id"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// An invalid row anywhere in the batch rejects the whole batch before
/// anything is logged or applied — validation is all-or-nothing.
#[test]
fn batch_validation_is_all_or_nothing() {
    let dir = unique_dir("validate");
    let mut db = fresh_db(4, 4);
    db.attach_wal(&dir).unwrap();
    let mut rows = batch();
    rows[BATCH_ROWS / 2].1 = vec![1.0; SERIES_LEN + 1]; // wrong dimension
    let err = db.insert_batch("r", rows).unwrap_err();
    assert!(
        err.to_string().contains("dimension") || err.to_string().contains("length"),
        "unexpected error: {err}"
    );
    assert_eq!(
        db.relation("r").unwrap().row_count(),
        BASE_ROWS,
        "nothing applied"
    );
    let status = db.wal_status().unwrap();
    assert_eq!(status.wal_records, 0, "nothing logged");
    std::fs::remove_dir_all(&dir).ok();
}
