//! Incremental-insert equivalence: the maintenance write path (R*-tree
//! `insert_point` through `Database::insert_into`) must be observationally
//! identical to rebuilding from scratch.
//!
//! For random corpora, split points and insert orders, a database that
//! bulk-loads a prefix and *incrementally inserts* the rest answers every
//! query form bitwise-identically to a database that loads all rows up
//! front — serially and at 4 threads, sharded and not, before and after a
//! snapshot save/reload. The tree structures genuinely differ (incremental
//! splits vs STR packing); only the sorted query outputs are contractually
//! equal.
//!
//! The companion property pins *incrementality* itself: each insert's
//! [`InsertReport::nodes_built`] — the number of freshly materialized
//! arena nodes — stays bounded by the split chain (root growth + one
//! split per level), nowhere near the node count a rebuild would report.

mod common;

use common::{assert_outputs_bitwise_equal, corpus};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use similarity_queries::prelude::*;
use similarity_queries::query::execute;
use std::sync::atomic::{AtomicU64, Ordering};

const SERIES_LEN: usize = 32;

/// Upper bound on nodes materialized by one insert: one new node per
/// level of a split chain plus a root growth. Trees in these corpora are
/// ≤ 4 levels; a rebuild would materialize every node (dozens).
const MAX_NODES_PER_INSERT: u64 = 16;

/// The query battery both databases must agree on bitwise.
const QUERIES: &[&str] = &[
    "FIND SIMILAR TO ROW 0 IN r EPSILON 2.0",
    "FIND SIMILAR TO ROW 2 IN r USING mavg(3) ON BOTH EPSILON 2.5",
    "FIND 6 NEAREST TO ROW 1 IN r",
    "FIND PAIRS IN r EPSILON 1.2 METHOD d",
];

/// A deterministic shuffle of `0..n` (Fisher–Yates over the seeded rng).
fn shuffled(n: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    order
}

fn unique_snapshot_path() -> std::path::PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "simq-insert-equivalence-{}-{}.simq",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed),
    ))
}

/// Asserts the two databases answer the whole battery identically at 1
/// and 4 threads.
fn assert_equivalent(a: &mut Database, b: &mut Database, what: &str) {
    for threads in [Parallelism::Serial, Parallelism::Fixed(4)] {
        a.set_parallelism(threads);
        b.set_parallelism(threads);
        for q in QUERIES {
            let x = execute(a, q).unwrap();
            let y = execute(b, q).unwrap();
            assert_outputs_bitwise_equal(&x, &y, &format!("{what}: {q} @ {threads}"));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random interleavings of bulk-loaded and incrementally inserted
    /// rows are indistinguishable from loading everything up front —
    /// including after the incrementally maintained tree round-trips
    /// through a snapshot and accepts one more insert.
    #[test]
    fn incremental_inserts_match_bulk_load(
        seed in 0u64..10_000,
        total in 8usize..60,
        split_frac in 0.0f64..1.0,
        sharded in prop_oneof![Just(false), Just(true)],
    ) {
        let series = corpus(seed, total, SERIES_LEN);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
        let order = shuffled(total, &mut rng);
        // At least one row bulk-loads (an empty relation cannot be
        // indexed) and at least one arrives through the write path.
        let split = 1 + ((total - 2) as f64 * split_frac) as usize;
        let shards = if sharded { 4 } else { 1 };

        // Incrementally maintained database: prefix at build time, the
        // rest through Database::insert_into against the live tree(s).
        let mut rel = SeriesRelation::new("r", SERIES_LEN, FeatureScheme::paper_default());
        for &row in &order[..split] {
            rel.insert(format!("S{row}"), series[row].clone()).unwrap();
        }
        let mut inc = Database::new();
        inc.add_relation_indexed(rel);
        if sharded {
            inc.shard_relation("r", shards).unwrap();
        }
        for &row in &order[split..] {
            let report = inc
                .insert_into("r", format!("S{row}"), series[row].clone())
                .unwrap();
            prop_assert!(
                report.nodes_built <= MAX_NODES_PER_INSERT,
                "insert of S{row} built {} nodes — that is a rebuild, not maintenance",
                report.nodes_built,
            );
        }

        // Oracle: the same rows in the same order, all present up front.
        let mut all = SeriesRelation::new("r", SERIES_LEN, FeatureScheme::paper_default());
        for &row in &order {
            all.insert(format!("S{row}"), series[row].clone()).unwrap();
        }
        let mut bulk = Database::new();
        bulk.add_relation_indexed(all);
        if sharded {
            bulk.shard_relation("r", shards).unwrap();
        }

        assert_equivalent(&mut inc, &mut bulk, "pre-reload");

        // The incrementally grown tree round-trips through a snapshot …
        let path = unique_snapshot_path();
        inc.save_snapshot(&path).unwrap();
        let mut reloaded = Database::open_snapshot(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_equivalent(&mut reloaded, &mut bulk, "post-reload");

        // … and the decoded arena keeps accepting incremental inserts.
        let mut gen = WalkGenerator::new(seed.wrapping_add(1));
        let probe = gen.series(SERIES_LEN);
        let report = reloaded.insert_into("r", "PROBE", probe.clone()).unwrap();
        prop_assert!(report.nodes_built <= MAX_NODES_PER_INSERT);
        bulk.insert_into("r", "PROBE", probe).unwrap();
        assert_equivalent(&mut reloaded, &mut bulk, "post-reload insert");
    }
}

/// The headline incrementality measurement, deterministic: growing an
/// 800-row tree one insert at a time materializes a small bounded number
/// of nodes per insert, while each from-scratch rebuild re-materializes
/// the whole arena. This is the "demonstrably skips the full rebuild"
/// acceptance check, mirrored by the `insert_maintenance` bench.
#[test]
fn per_insert_node_cost_is_bounded_rebuild_is_not() {
    let series = corpus(77, 800, SERIES_LEN);
    let mut rel = SeriesRelation::new("r", SERIES_LEN, FeatureScheme::paper_default());
    rel.insert("S0", series[0].clone()).unwrap();
    let mut db = Database::new();
    db.add_relation_indexed(rel);

    let mut max_delta = 0u64;
    for (i, s) in series.iter().enumerate().skip(1) {
        let report = db.insert_into("r", format!("S{i}"), s.clone()).unwrap();
        max_delta = max_delta.max(report.nodes_built);
    }
    // Worst single insert: a full split chain, not a rebuild.
    assert!(
        max_delta <= MAX_NODES_PER_INSERT,
        "worst insert built {max_delta} nodes"
    );

    // A rebuild of the same 150 points materializes the entire arena —
    // an order of magnitude beyond the worst incremental step.
    let stored = db.relation("r").unwrap();
    let similarity_queries::query::StoredRelation::Single { relation, .. } = stored else {
        panic!("unsharded fixture");
    };
    let rebuilt = relation.build_index(RTreeConfig::default());
    assert!(
        rebuilt.nodes_built() > 5 * max_delta,
        "rebuild materialized {} nodes, worst insert {max_delta}",
        rebuilt.nodes_built()
    );
}
