//! CLI-level tests: the `simq` binary is spawned for real (via
//! `CARGO_BIN_EXE_simq`) and driven over stdin/argv, pinning the shell
//! behaviors unit tests cannot see — `\threads` validation, `;`-separated
//! batch lines, `\batch` collect mode and the non-interactive `--exec`
//! script path.

use std::io::Write;
use std::process::{Command, Stdio};

/// Runs the binary with `args`, feeding `stdin`; returns (stdout, stderr,
/// exit code).
fn run_cli(args: &[&str], stdin: &str) -> (String, String, i32) {
    run_cli_with(args, stdin, &[])
}

/// [`run_cli`] with extra environment variables. The durability and
/// snapshot variables are always scrubbed first: the workspace suite
/// itself runs under `SIMQ_WAL=1`/`SIMQ_DB=…` matrices, and the spawned
/// binary must not interpret those as *its* startup directories.
fn run_cli_with(args: &[&str], stdin: &str, env: &[(&str, &str)]) -> (String, String, i32) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_simq"));
    cmd.env_remove("SIMQ_WAL")
        .env_remove("SIMQ_DB")
        .env_remove("SIMQ_LISTEN");
    for (k, v) in env {
        cmd.env(k, v);
    }
    let mut child = cmd
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("simq binary spawns");
    child
        .stdin
        .as_mut()
        .expect("piped stdin")
        .write_all(stdin.as_bytes())
        .expect("write stdin");
    let out = child.wait_with_output().expect("simq exits");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

#[test]
fn threads_rejects_zero_and_garbage_with_an_error() {
    let (stdout, _, code) = run_cli(
        &[],
        "\\threads 0\n\\threads garbage\n\\threads -3\n\\threads 2\n\\threads\n\\quit\n",
    );
    assert_eq!(code, 0);
    assert!(
        stdout.contains("error: invalid thread count \"0\""),
        "{stdout}"
    );
    assert!(
        stdout.contains("error: invalid thread setting \"garbage\""),
        "{stdout}"
    );
    assert!(
        stdout.contains("error: invalid thread setting \"-3\""),
        "{stdout}"
    );
    // The valid setting still lands, and bare \threads reports it.
    assert!(stdout.contains("parallelism: 2 threads"), "{stdout}");
}

#[test]
fn invalid_simq_threads_env_is_reported_not_silently_ignored() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_simq"))
        .env("SIMQ_THREADS", "0")
        .env_remove("SIMQ_WAL")
        .env_remove("SIMQ_DB")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("simq binary spawns");
    child
        .stdin
        .as_mut()
        .expect("piped stdin")
        .write_all(b"\\quit\n")
        .expect("write stdin");
    let out = child.wait_with_output().expect("simq exits");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("ignoring SIMQ_THREADS") && stderr.contains("\"0\""),
        "{stderr}"
    );
}

#[test]
fn semicolon_line_runs_as_one_batch() {
    let (stdout, _, code) = run_cli(
        &[],
        "FIND SIMILAR TO ROW 1 IN walks EPSILON 1.0; FIND SIMILAR TO ROW 2 IN walks EPSILON 1.0\n\\quit\n",
    );
    assert_eq!(code, 0);
    assert!(stdout.contains("batch: 2 queries"), "{stdout}");
    assert!(stdout.contains("1 shared group"), "{stdout}");
    assert!(stdout.contains("shared work:"), "{stdout}");
}

#[test]
fn batch_collect_mode_queues_and_runs() {
    let (stdout, _, code) = run_cli(
        &[],
        "\\batch\nFIND SIMILAR TO ROW 3 IN walks EPSILON 1.5\nFIND SIMILAR TO ROW 4 IN walks EPSILON 1.5\n\\batch show\n\\batch explain\n\\batch run\n\\quit\n",
    );
    assert_eq!(code, 0);
    assert!(stdout.contains("queued (2 pending"), "{stdout}");
    assert!(stdout.contains("[1] FIND SIMILAR TO ROW 4"), "{stdout}");
    assert!(
        stdout.contains("shared R*-tree range traversal"),
        "{stdout}"
    );
    assert!(stdout.contains("batch: 2 queries"), "{stdout}");
}

#[test]
fn trailing_semicolon_is_not_a_lex_error() {
    let (stdout, _, code) = run_cli(&[], "FIND SIMILAR TO ROW 1 IN walks EPSILON 1.0;\n\\quit\n");
    assert_eq!(code, 0);
    assert!(!stdout.contains("lex error"), "{stdout}");
    assert!(stdout.contains("hits:"), "{stdout}");
    // A line of only separators is ignored, not an error.
    let (stdout, _, _) = run_cli(&[], ";;\n\\quit\n");
    assert!(!stdout.contains("error"), "{stdout}");
}

#[test]
fn batch_run_on_empty_buffer_stays_in_collect_mode() {
    let (stdout, _, code) = run_cli(
        &[],
        "\\batch\n\\batch run\nFIND SIMILAR TO ROW 1 IN walks EPSILON 1.0\n\\batch run\n\\quit\n",
    );
    assert_eq!(code, 0);
    assert!(stdout.contains("nothing queued yet"), "{stdout}");
    // The empty run did not discard collect mode: the query queued and
    // the second run executed it.
    assert!(stdout.contains("queued (1 pending"), "{stdout}");
    assert!(stdout.contains("batch: 1 queries"), "{stdout}");
}

#[test]
fn exec_runs_a_script_and_exits_zero() {
    let (stdout, _, code) = run_cli(
        &[
            "--exec",
            "FIND SIMILAR TO ROW 5 IN walks EPSILON 1.0; FIND 3 NEAREST TO ROW 0 IN walks",
        ],
        "",
    );
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("-- [0] FIND SIMILAR TO ROW 5"), "{stdout}");
    assert!(
        stdout.contains("-- [1] FIND 3 NEAREST TO ROW 0"),
        "{stdout}"
    );
    assert!(stdout.contains("batch: 2 queries"), "{stdout}");
}

#[test]
fn exec_with_a_failing_query_exits_nonzero() {
    let (stdout, _, code) = run_cli(
        &[
            "--exec",
            "FIND SIMILAR TO ROW 5 IN walks EPSILON 1.0; FIND SIMILAR TO ROW 5 IN nope EPSILON 1.0",
        ],
        "",
    );
    assert_eq!(code, 1, "{stdout}");
    assert!(stdout.contains("unknown relation"), "{stdout}");
}

#[test]
fn exec_without_a_script_is_a_usage_error() {
    let (_, stderr, code) = run_cli(&["--exec"], "");
    assert_eq!(code, 2);
    assert!(stderr.contains("usage"), "{stderr}");
}

#[test]
fn prepare_exec_and_sessions_commands_work() {
    let (stdout, _, code) = run_cli(
        &[],
        "\\prepare rq FIND SIMILAR TO ROW ? IN walks EPSILON ?\n\
         \\exec rq 5 1.0\n\
         \\exec rq 7 1.5\n\
         \\prepare nq FIND $k NEAREST TO ROW $row IN walks\n\
         \\exec nq k=3 row=10\n\
         \\sessions\n\\quit\n",
    );
    assert_eq!(code, 0);
    assert!(
        stdout.contains(
            "prepared `rq` with 2 parameters: ?1: integer (ROW id), ?2: number (EPSILON)"
        ),
        "{stdout}"
    );
    assert!(
        stdout.contains("prepared `nq` with 2 parameters: $k: integer (k), $row: integer (ROW id)"),
        "{stdout}"
    );
    // The prepare planted the plan, so every \exec is a cache hit.
    assert!(stdout.contains("cache=hit"), "{stdout}");
    assert!(!stdout.contains("cache=miss"), "{stdout}");
    assert!(
        stdout.contains("session: 2 prepared statements, 3 executions"),
        "{stdout}"
    );
    assert!(stdout.contains("3 hits / 2 misses"), "{stdout}");
}

#[test]
fn exec_reports_bind_errors_and_unknown_statements() {
    let (stdout, _, code) = run_cli(
        &[],
        "\\exec nothere 1\n\
         \\prepare rq FIND SIMILAR TO ROW ? IN walks EPSILON ?\n\
         \\exec rq 5\n\
         \\exec rq [1, 2] 1.0\n\
         \\exec rq 5 oops\n\\quit\n",
    );
    assert_eq!(code, 0);
    assert!(
        stdout.contains("unknown prepared statement \"nothere\""),
        "{stdout}"
    );
    assert!(
        stdout.contains("statement takes 2 positional parameters, got 1"),
        "{stdout}"
    );
    assert!(
        stdout.contains("expects an integer, got a series"),
        "{stdout}"
    );
    assert!(stdout.contains("bad number \"oops\""), "{stdout}");
}

#[test]
fn exec_binds_series_parameters_with_spaces() {
    // A 128-value series parameter bound from a bracketed literal with
    // spaces; the prepared query must execute (identity on itself).
    let series: Vec<String> = (0..128).map(|t| format!("{}", (t % 7) as f64)).collect();
    let input = format!(
        "\\prepare sq FIND SIMILAR TO ? IN walks EPSILON ?\n\\exec sq [{}] 1000\n\\quit\n",
        series.join(", ")
    );
    let (stdout, _, code) = run_cli(&[], &input);
    assert_eq!(code, 0);
    assert!(stdout.contains("?1: series (query series)"), "{stdout}");
    assert!(stdout.contains("hits:"), "{stdout}");
    assert!(!stdout.contains("error"), "{stdout}");
}

#[test]
fn ad_hoc_queries_share_the_session_plan_cache() {
    let (stdout, _, code) = run_cli(
        &[],
        "FIND SIMILAR TO ROW 1 IN walks EPSILON 1.0\n\
         FIND SIMILAR TO ROW 2 IN walks EPSILON 2.0\n\\quit\n",
    );
    assert_eq!(code, 0);
    // Same shape, different constants: first plans, second hits.
    assert!(stdout.contains("cache=miss"), "{stdout}");
    assert!(stdout.contains("cache=hit"), "{stdout}");
}

#[test]
fn shard_command_partitions_lists_and_merges_back() {
    let (stdout, _, code) = run_cli(
        &[],
        "\\shard walks 4\n\
         \\relations\n\
         FIND 3 NEAREST TO ROW 0 IN walks\n\
         \\shard walks 1\n\
         \\relations\n\
         \\shard walks 0\n\
         \\shard nope 2\n\
         \\shard\n\
         \\quit\n",
    );
    assert_eq!(code, 0);
    assert!(stdout.contains("sharded `walks` into 4 shards"), "{stdout}");
    // The listing shows index kind, shard count and per-shard row counts.
    assert!(
        stdout
            .contains("index: 4 \u{d7} R*-tree (one per shard), shards: 4 (250/250/250/250 rows)"),
        "{stdout}"
    );
    // Queries over the sharded relation still answer (row 0 finds itself).
    assert!(stdout.contains("3 hits:"), "{stdout}");
    // Merging back restores the single-tree listing.
    assert!(stdout.contains("sharded `walks` into 1 shard "), "{stdout}");
    assert!(stdout.contains("index: R*-tree\n"), "{stdout}");
    // Invalid uses produce explicit errors, not silence.
    assert!(
        stdout.contains("error: shard count must be a positive integer"),
        "{stdout}"
    );
    assert!(
        stdout.contains("error: unknown relation \"nope\""),
        "{stdout}"
    );
    assert!(stdout.contains("usage: \\shard <relation> <n>"), "{stdout}");
}

#[test]
fn sharded_snapshot_roundtrips_through_save_and_open() {
    let dir = std::env::temp_dir().join("simq-cli-shard-snapshot");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("sharded.simq");
    let path_str = path.to_str().expect("utf-8 temp path");
    let (stdout, _, code) = run_cli(
        &[],
        &format!("\\shard walks 3\n\\save {path_str}\n\\open {path_str}\n\\relations\n\\quit\n"),
    );
    std::fs::remove_file(&path).ok();
    assert_eq!(code, 0);
    assert!(stdout.contains("saved snapshot"), "{stdout}");
    assert!(stdout.contains("opened snapshot"), "{stdout}");
    // The reopened relation is still sharded 3 ways.
    assert!(stdout.contains("shards: 3"), "{stdout}");
}

/// Every runnable example in docs/QUERY_LANGUAGE.md, executed verbatim
/// against the demo relation — the reference doc cannot drift from the
/// implementation while this passes. Keep in sync with the doc.
#[test]
fn query_language_doc_examples_run() {
    let examples = [
        // Range queries
        "FIND SIMILAR TO ROW 7 IN walks EPSILON 2.0",
        "FIND SIMILAR TO NAME W0042 IN walks USING mavg(20) ON BOTH EPSILON 1.5",
        "FIND SIMILAR TO ROW 7 IN walks USING reverse THEN mavg(5) EPSILON 3",
        "FIND SIMILAR TO ROW 7 IN walks EPSILON 2 MEAN WITHIN 5 STD WITHIN 1",
        "FIND SIMILAR TO ROW 7 IN walks EPSILON 2 FORCE SCAN",
        // kNN queries
        "FIND 5 NEAREST TO ROW 3 IN walks",
        "FIND 5 NEAREST TO ROW 3 IN walks USING mavg(8) ON BOTH",
        "FIND 3 NEAREST TO NAME W0007 IN walks FORCE SCAN",
        // All-pairs joins
        "FIND PAIRS IN walks USING mavg(8) EPSILON 1.5 METHOD d",
        "FIND PAIRS IN walks USING mavg(8) EPSILON 1.5 METHOD b",
        "FIND PAIRS IN walks MATCHING mavg(5) AGAINST reverse EPSILON 2",
        "FIND PAIRS IN walks USING mavg(20) ON ONE EPSILON 2",
        // EXPLAIN
        "EXPLAIN FIND SIMILAR TO ROW 7 IN walks USING warp(2) EPSILON 1",
        "EXPLAIN FIND SIMILAR TO ROW 7 IN walks EPSILON 1 FORCE SCAN",
        "EXPLAIN FIND 5 NEAREST TO ROW 3 IN walks",
        // EXPLAIN ANALYZE
        "EXPLAIN ANALYZE FIND SIMILAR TO ROW 7 IN walks EPSILON 2.0",
        "EXPLAIN ANALYZE FIND 5 NEAREST TO ROW 3 IN walks",
        "EXPLAIN ANALYZE FIND PAIRS IN walks USING mavg(8) EPSILON 1.5 METHOD b",
        // Batches (one `;`-separated line = one batch)
        "FIND SIMILAR TO ROW 1 IN walks EPSILON 2; FIND SIMILAR TO ROW 2 IN walks EPSILON 2; FIND 5 NEAREST TO ROW 3 IN walks",
    ];
    let mut input = examples.join("\n");
    // Placeholder examples go through \prepare / \exec.
    input.push_str(
        "\n\\prepare p1 FIND SIMILAR TO ROW ? IN walks EPSILON ?\
         \n\\exec p1 7 2\
         \n\\prepare p2 FIND $k NEAREST TO ROW $row IN walks\
         \n\\exec p2 k=5 row=3\
         \n\\quit\n",
    );
    let (stdout, _, code) = run_cli(&[], &input);
    assert_eq!(code, 0);
    assert!(
        !stdout.contains("error"),
        "a documented example failed:\n{stdout}"
    );
    // Spot checks: hits, pairs, a rendered plan and the prepared runs.
    assert!(stdout.contains("hits:"), "{stdout}");
    assert!(stdout.contains("pairs:"), "{stdout}");
    assert!(stdout.contains("access: SeqScan"), "{stdout}");
    assert!(stdout.contains("access: IndexScan"), "{stdout}");
    assert!(stdout.contains("operators:"), "{stdout}");
    assert!(stdout.contains("range.descend"), "{stdout}");
    assert!(
        stdout.contains("prepared `p2` with 2 parameters"),
        "{stdout}"
    );
}

#[test]
fn wal_lifecycle_insert_crash_replay_checkpoint() {
    let dir = std::env::temp_dir().join(format!("simq-cli-wal-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let dir_str = dir.to_str().expect("utf-8 temp path");

    // First run: attach a fresh WAL directory, insert one row, exit
    // WITHOUT checkpointing — the row exists only in the WAL tail.
    let series: Vec<String> = (0..128).map(|i| format!("{}", 30 + i % 7)).collect();
    let insert = format!(
        "\\insert walks WNEW [{}]\n\\wal\n\\quit\n",
        series.join(", ")
    );
    let (stdout, _, code) = run_cli_with(&[], &insert, &[("SIMQ_WAL", dir_str)]);
    assert_eq!(code, 0);
    assert!(stdout.contains("attached WAL directory"), "{stdout}");
    assert!(
        stdout.contains("inserted id=1000 into `walks` shard 0"),
        "{stdout}"
    );
    assert!(stdout.contains("WAL record synced"), "{stdout}");
    assert!(stdout.contains("dirty shards: 1 of 1"), "{stdout}");

    // Second run: reopen the directory — replay must bring the row
    // back and a query must see it. A replayed shard starts *clean*
    // (its WAL is its durable home), so a fresh write is what makes
    // the subsequent bare `\save` checkpoint rewrite the shard and
    // absorb the log.
    let script = format!(
        "FIND 1 NEAREST TO NAME WNEW IN walks\n\\insert walks WNEW2 [{}]\n\\save\n\\wal\n\\quit\n",
        series.join(", ")
    );
    let (stdout, _, code) = run_cli_with(&[], &script, &[("SIMQ_WAL", dir_str)]);
    assert_eq!(code, 0);
    assert!(
        stdout.contains("replayed 1 WAL record"),
        "replay not reported:\n{stdout}"
    );
    assert!(
        stdout.contains("WNEW"),
        "replayed row not queryable:\n{stdout}"
    );
    assert!(stdout.contains("inserted id=1001"), "{stdout}");
    assert!(stdout.contains("checkpoint at epoch"), "{stdout}");
    assert!(stdout.contains("1 shard rewritten"), "{stdout}");

    // Third run: the checkpoint absorbed the log — nothing to replay,
    // but both inserted rows are in the snapshot.
    let (stdout, _, code) = run_cli_with(
        &[],
        "FIND 2 NEAREST TO NAME WNEW2 IN walks\n\\wal\n\\quit\n",
        &[("SIMQ_WAL", dir_str)],
    );
    assert_eq!(code, 0);
    assert!(stdout.contains("replayed 0 WAL records"), "{stdout}");
    assert!(stdout.contains("WNEW2"), "{stdout}");
    assert!(stdout.contains("dirty shards: 0 of 1"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn insert_validates_arguments_before_touching_anything() {
    let (stdout, _, code) = run_cli(
        &[],
        "\\insert\n\\insert walks\n\\insert walks X\n\\insert walks X [1, 2]\n\\insert nosuch X [1, 2]\n\\quit\n",
    );
    assert_eq!(code, 0);
    assert!(stdout.contains("usage: \\insert"), "{stdout}");
    assert!(stdout.contains("dimension mismatch"), "{stdout}");
    assert!(stdout.contains("unknown relation"), "{stdout}");
}

#[test]
fn semicolon_insert_runs_as_one_grouped_batch() {
    let row = |k: usize| {
        (0..128)
            .map(|i| format!("{}", 30 + (i + k) % 5))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let script = format!(
        "\\shard walks 2\n\\insert walks B0 [{}]; B1 [{}]; B2 [{}]\nFIND 1 NEAREST TO NAME B1 IN walks\n\\quit\n",
        row(0),
        row(1),
        row(2),
    );
    let (stdout, _, code) = run_cli(&[], &script);
    assert_eq!(code, 0);
    assert!(
        stdout.contains("batch inserted 3 rows into `walks` across 2 shards (ids 1000..=1002"),
        "{stdout}"
    );
    // No WAL attached: nothing logged, nothing synced — but the rows
    // are live and queryable immediately.
    assert!(stdout.contains("0 WAL syncs for 0 records"), "{stdout}");
    assert!(stdout.contains("B1"), "{stdout}");
    assert!(!stdout.contains("row 0 failed"), "{stdout}");
}

/// A `simq` process driven line by line: stdin stays open between sends,
/// and a reader thread accumulates stdout so tests can interleave shell
/// commands with *external* filesystem actions — something
/// [`run_cli_with`]'s write-everything-then-wait shape cannot do.
struct InteractiveCli {
    child: std::process::Child,
    stdin: std::process::ChildStdin,
    stdout: std::sync::Arc<std::sync::Mutex<String>>,
    stderr: std::sync::Arc<std::sync::Mutex<String>>,
    /// End of the last matched pattern: `expect` only searches new output,
    /// so repeated similar lines (two inserts, two checkpoints) cannot
    /// satisfy a later expectation with earlier output.
    cursor: usize,
}

impl InteractiveCli {
    fn spawn(env: &[(&str, &str)]) -> Self {
        Self::spawn_with_args(&[], env)
    }

    fn spawn_with_args(args: &[&str], env: &[(&str, &str)]) -> Self {
        use std::io::Read;
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_simq"));
        cmd.args(args);
        cmd.env_remove("SIMQ_WAL")
            .env_remove("SIMQ_DB")
            .env_remove("SIMQ_LISTEN");
        for (k, v) in env {
            cmd.env(k, v);
        }
        let mut child = cmd
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("simq binary spawns");
        let stdin = child.stdin.take().expect("piped stdin");
        let reader = |mut pipe: Box<dyn Read + Send>| {
            let buf = std::sync::Arc::new(std::sync::Mutex::new(String::new()));
            let shared = buf.clone();
            std::thread::spawn(move || {
                let mut bytes = [0u8; 4096];
                while let Ok(n) = pipe.read(&mut bytes) {
                    if n == 0 {
                        break;
                    }
                    shared
                        .lock()
                        .expect("pipe buffer lock")
                        .push_str(&String::from_utf8_lossy(&bytes[..n]));
                }
            });
            buf
        };
        let stdout = reader(Box::new(child.stdout.take().expect("piped stdout")));
        let stderr = reader(Box::new(child.stderr.take().expect("piped stderr")));
        Self {
            child,
            stdin,
            stdout,
            stderr,
            cursor: 0,
        }
    }

    /// Sends one shell line (newline appended).
    fn send(&mut self, line: &str) {
        self.stdin
            .write_all(format!("{line}\n").as_bytes())
            .expect("write stdin line");
        self.stdin.flush().expect("flush stdin");
    }

    /// Polls stdout until `pattern` appears after the previous match
    /// (panics with the full transcript after 30 s).
    fn expect(&mut self, pattern: &str) {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        loop {
            {
                let out = self.stdout.lock().expect("stdout buffer lock");
                if let Some(at) = out[self.cursor.min(out.len())..].find(pattern) {
                    self.cursor = self.cursor.min(out.len()) + at + pattern.len();
                    return;
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "timed out waiting for {pattern:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
                self.stdout.lock().expect("stdout buffer lock"),
                self.stderr.lock().expect("stderr buffer lock"),
            );
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
    }

    /// `\quit`s, waits for exit and returns (stdout, exit code).
    fn finish(mut self) -> (String, i32) {
        self.send("\\quit");
        drop(self.stdin);
        let status = self.child.wait().expect("simq exits");
        std::thread::sleep(std::time::Duration::from_millis(50));
        let out = self.stdout.lock().expect("stdout buffer lock").clone();
        (out, status.code().unwrap_or(-1))
    }
}

/// The poisoned-write-path lifecycle through the real binary: a DDL
/// auto-checkpoint fails (its snapshot rename target is blocked by a
/// directory), which must poison inserts with an actionable error — not
/// silently drop durability — until an explicit `\wal checkpoint`
/// succeeds and re-opens the write path.
#[test]
fn poisoned_write_path_recovers_via_manual_checkpoint() {
    let dir = std::env::temp_dir().join(format!("simq-cli-poison-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let dir_str = dir.to_str().expect("utf-8 temp path").to_string();

    let mut cli = InteractiveCli::spawn(&[("SIMQ_WAL", &dir_str)]);
    cli.expect("attached WAL directory");

    // The attach checkpointed the demo catalog at epoch 1 with densely
    // assigned file ids; re-sharding is a shape change, so its automatic
    // checkpoint writes shard 0 of the NEXT file id at the NEXT epoch.
    // Planting a directory at that exact path makes `write_atomic`'s
    // rename fail — the cheapest deterministic stand-in for a full disk.
    let (mut max_file_id, mut max_epoch) = (0u64, 1u64);
    for entry in std::fs::read_dir(&dir).expect("WAL dir listable") {
        let name = entry.expect("dir entry").file_name();
        let name = name.to_string_lossy();
        if let Some((id, rest)) = name.strip_prefix('r').and_then(|r| r.split_once(".s")) {
            if let Ok(id) = id.parse::<u64>() {
                max_file_id = max_file_id.max(id);
            }
            if let Some(epoch) = rest
                .split_once(".e")
                .and_then(|(_, e)| e.split_once('.'))
                .and_then(|(e, _)| e.parse::<u64>().ok())
            {
                max_epoch = max_epoch.max(epoch);
            }
        }
    }
    let blocker = dir.join(format!("r{}.s0.e{}.snap", max_file_id + 1, max_epoch + 1));
    std::fs::create_dir(&blocker).expect("blocker directory created");

    // The DDL itself succeeds in memory; the poison is deferred to the
    // write path, and `\wal` status must surface it loudly.
    cli.send("\\shard walks 2");
    cli.expect("sharded `walks` into 2 shards");
    cli.send("\\wal");
    cli.expect("WRITE PATH POISONED");

    let series: Vec<String> = (0..128).map(|i| format!("{}", 30 + i % 7)).collect();
    let insert = format!("\\insert walks PHOENIX [{}]", series.join(", "));
    cli.send(&insert);
    cli.expect("write path poisoned by a failed checkpoint");

    // Operator clears the blockage; an explicit checkpoint recovers
    // (same epoch the failed attempt targeted — nothing was committed).
    std::fs::remove_dir(&blocker).expect("blocker directory removed");
    cli.send("\\wal checkpoint");
    cli.expect("checkpoint at epoch 2");
    cli.send(&insert);
    cli.expect("inserted id=1000 into `walks` shard 0");

    let (stdout, code) = cli.finish();
    assert_eq!(code, 0, "{stdout}");

    // The recovered insert is durable: a fresh process replays it.
    let (stdout, _, code) = run_cli_with(
        &[],
        "FIND 1 NEAREST TO NAME PHOENIX IN walks\n\\quit\n",
        &[("SIMQ_WAL", &dir_str)],
    );
    assert_eq!(code, 0);
    assert!(stdout.contains("replayed 1 WAL record"), "{stdout}");
    assert!(stdout.contains("PHOENIX"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

/// The network service through the real binary, end to end: one `simq
/// --serve` process and one interactive `simq` process that `\connect`s
/// to it. Queries, `\prepare`/`\exec`/`\prepared` run server-side with
/// the same printed shape as local execution; local-only commands hint
/// instead of silently touching the wrong database; `\disconnect`
/// returns to the local catalog; and `quit` on the server's stdin
/// drains and stops it cleanly.
#[test]
fn serve_and_connect_roundtrip_between_two_processes() {
    let mut server = InteractiveCli::spawn_with_args(&["--serve", "127.0.0.1:0"], &[]);
    server.expect("serving on 127.0.0.1:");
    // Port 0 picked a free port; parse the full address off the banner.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    let addr = loop {
        {
            let out = server.stdout.lock().expect("stdout buffer lock");
            if let Some(at) = out.find("serving on ") {
                let rest = &out[at + "serving on ".len()..];
                if let Some(eol) = rest.find('\n') {
                    break rest[..eol].trim().to_string();
                }
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "server banner line never completed"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    };

    let mut client = InteractiveCli::spawn(&[]);
    client.expect("type a query");
    client.send(&format!("\\connect {addr}"));
    client.expect("connected to simq-server/");
    // A remote query prints the same rows + stat line as local mode.
    client.send("FIND 3 NEAREST TO ROW 5 IN walks");
    client.expect("3 hits:");
    client.expect("id=5");
    client.expect("plan IndexScan");
    // Prepared statements live in the connection's server-side registry.
    client.send("\\prepare knn FIND ? NEAREST TO ROW $r IN walks");
    client.expect("prepared `knn` with 2 parameters");
    client.send("\\exec knn 2 r=7");
    client.expect("2 hits:");
    client.expect("cache=hit");
    client.send("\\prepared");
    client.expect("knn: FIND ? NEAREST TO ROW $r IN walks");
    // Local-only commands hint rather than run against the wrong db.
    client.send("\\relations");
    client.expect("local-only");
    // Back to the local database: the remote registry is not ours.
    client.send("\\disconnect");
    client.expect("disconnected from");
    client.send("\\prepared");
    client.expect("no prepared statements");
    let (stdout, code) = client.finish();
    assert_eq!(code, 0, "{stdout}");

    // `quit` on the serving process's stdin stops it cleanly.
    server.send("quit");
    server.expect("server stopped");
    let status = server.child.wait().expect("server process exits");
    assert_eq!(status.code(), Some(0));
}
