//! Lemma 1 as an executable property: "the k-index approach enhanced with
//! transformations always returns a superset of the answer set" — and
//! after exact postprocessing, *exactly* the answer set.
//!
//! Property-tests the full index pipeline (feature extraction → search
//! rectangle → transformed R*-tree traversal → postprocessing) against the
//! brute-force scan over random corpora, random transformations and random
//! thresholds, in both feature representations.

mod common;

use common::{corpus, db_with, hit_ids};
use proptest::prelude::*;
use similarity_queries::prelude::*;

/// A strategy generating polar-safe transformation expressions.
fn polar_safe_transform() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        Just("USING mavg(3)".to_string()),
        Just("USING mavg(20)".to_string()),
        Just("USING reverse".to_string()),
        Just("USING scale(-2.5)".to_string()),
        Just("USING shift(4)".to_string()),
        Just("USING reverse THEN mavg(10)".to_string()),
        Just("USING wmavg(0.5, 0.3, 0.2)".to_string()),
        Just("USING warp(2)".to_string()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Index answers == scan answers, for every polar-safe transformation
    /// and threshold (range queries, transformation applied to both sides).
    #[test]
    fn index_range_equals_scan_range_polar(
        seed in 0u64..500,
        row in 0usize..30,
        eps in 0.05f64..6.0,
        t in polar_safe_transform(),
    ) {
        let series = corpus(seed, 30, 64);
        let db = db_with(&series, FeatureScheme::paper_default());
        let clause = if t.is_empty() {
            String::new()
        } else {
            format!("{t} ON BOTH ")
        };
        let q = format!("FIND SIMILAR TO ROW {row} IN r {clause}EPSILON {eps}");
        let via_index = hit_ids(&db, &q);
        let via_scan = hit_ids(&db, &format!("{q} FORCE SCAN"));
        prop_assert_eq!(via_index, via_scan);
    }

    /// Same in the rectangular representation with real-multiplier
    /// transformations (the Theorem 2 safe cases).
    #[test]
    fn index_range_equals_scan_range_rect(
        seed in 0u64..500,
        row in 0usize..25,
        eps in 0.05f64..6.0,
        t in prop_oneof![
            Just(""),
            Just("USING reverse"),
            Just("USING scale(3)"),
            Just("USING scale(-1)"),
        ],
    ) {
        let series = corpus(seed.wrapping_add(1000), 25, 32);
        let db = db_with(&series, FeatureScheme::new(3, Representation::Rectangular, false));
        let both = if t.is_empty() { String::new() } else { format!("{t} ON BOTH") };
        let q = format!("FIND SIMILAR TO ROW {row} IN r {both} EPSILON {eps}");
        let via_index = hit_ids(&db, &q);
        let via_scan = hit_ids(&db, &format!("{q} FORCE SCAN"));
        prop_assert_eq!(via_index, via_scan);
    }

    /// The transformed traversal's candidate set is a superset of the
    /// answer set (the raw Lemma 1 statement, before postprocessing).
    #[test]
    fn candidates_superset_of_answers(
        seed in 0u64..300,
        row in 0usize..20,
        eps in 0.1f64..4.0,
    ) {
        let series = corpus(seed.wrapping_add(7), 20, 64);
        let db = db_with(&series, FeatureScheme::paper_default());
        let q = format!(
            "FIND SIMILAR TO ROW {row} IN r USING mavg(5) ON BOTH EPSILON {eps}"
        );
        let result = execute(&db, &q).unwrap();
        prop_assert!(result.stats.candidates >= result.stats.verified);
        // And the verified set matches the scan.
        let via_scan = hit_ids(&db, &format!("{q} FORCE SCAN"));
        let QueryOutput::Hits(hits) = result.output else { unreachable!() };
        prop_assert_eq!(hits.len(), via_scan.len());
    }

    /// kNN via the rectangular index equals kNN via scan.
    #[test]
    fn index_knn_equals_scan_knn(
        seed in 0u64..300,
        row in 0usize..25,
        k in 1usize..10,
    ) {
        let series = corpus(seed.wrapping_add(31), 25, 32);
        let db = db_with(&series, FeatureScheme::new(2, Representation::Rectangular, false));
        let via_index = hit_ids(&db, &format!("FIND {k} NEAREST TO ROW {row} IN r"));
        let via_scan = hit_ids(&db, &format!("FIND {k} NEAREST TO ROW {row} IN r FORCE SCAN"));
        prop_assert_eq!(via_index, via_scan);
    }

    /// All four join methods agree where they answer the same question:
    /// b == a, d == b; c == d-with-identity.
    #[test]
    fn join_methods_consistent(
        seed in 0u64..200,
        eps in 0.2f64..3.0,
    ) {
        let series = corpus(seed.wrapping_add(77), 20, 64);
        let db = db_with(&series, FeatureScheme::paper_default());
        let get = |m: char| -> Vec<(u64, u64)> {
            let r = execute(
                &db,
                &format!("FIND PAIRS IN r USING mavg(8) EPSILON {eps} METHOD {m}"),
            )
            .unwrap();
            match r.output {
                QueryOutput::Pairs(p) => p.into_iter().map(|x| (x.a, x.b)).collect(),
                other => panic!("expected pairs, got {other:?}"),
            }
        };
        let a = get('a');
        let b = get('b');
        let d = get('d');
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&b, &d);
    }
}

/// Non-random regression: a transformation that rotates coefficients past
/// ±π must not lose answers (the circular-angle-dimension fix).
#[test]
fn rotation_heavy_transform_loses_nothing() {
    // Reversal shifts every phase by π — the worst case for angle wrap.
    let series = corpus(99, 200, 128);
    let db = db_with(&series, FeatureScheme::paper_default());
    for row in [0, 10, 50, 199] {
        for eps in [0.5, 2.0, 5.0] {
            let q = format!("FIND SIMILAR TO ROW {row} IN r USING reverse ON BOTH EPSILON {eps}");
            let via_index = hit_ids(&db, &q);
            let via_scan = hit_ids(&db, &format!("{q} FORCE SCAN"));
            assert_eq!(via_index, via_scan, "row {row} eps {eps}");
        }
    }
}

/// Larger corpus smoke check at the paper's scale.
#[test]
fn paper_scale_corpus_agrees() {
    let series = corpus(7, 1067, 128);
    let db = db_with(&series, FeatureScheme::paper_default());
    for (row, eps) in [(0, 1.0), (500, 3.0), (1066, 8.0)] {
        let q = format!("FIND SIMILAR TO ROW {row} IN r USING mavg(20) ON BOTH EPSILON {eps}");
        let via_index = hit_ids(&db, &q);
        let via_scan = hit_ids(&db, &format!("{q} FORCE SCAN"));
        assert_eq!(via_index, via_scan, "row {row} eps {eps}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// kNN via the polar index (annular-sector MINDIST) equals kNN via
    /// scan, with and without transformations.
    #[test]
    fn polar_index_knn_equals_scan_knn(
        seed in 0u64..300,
        row in 0usize..25,
        k in 1usize..8,
        t in prop_oneof![
            Just(""),
            Just("USING mavg(5) ON BOTH"),
            Just("USING reverse ON BOTH"),
        ],
    ) {
        let series = corpus(seed.wrapping_add(91), 25, 64);
        let db = db_with(&series, FeatureScheme::paper_default());
        let q = format!("FIND {k} NEAREST TO ROW {row} IN r {t}");
        let via_index = hit_ids(&db, &q);
        let via_scan = hit_ids(&db, &format!("{q} FORCE SCAN"));
        prop_assert_eq!(via_index, via_scan);
    }
}
