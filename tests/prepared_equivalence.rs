//! The prepared-statement contract as executable properties:
//!
//! * **(a)** `prepare` + `bind` + session execution is **bitwise
//!   identical** to executing the equivalent literal query text through
//!   `execute()` — same hits, names and distances — at 1 and 4 threads,
//!   against the in-memory database and against a snapshot-reloaded one.
//! * **(b)** draining a streaming [`Cursor`] yields exactly the hits of
//!   the materialized `QueryOutput`.
//! * **(c)** a partially consumed range cursor's `nodes_visited` is
//!   strictly below the full execution's on the Figure 9 corpus — early
//!   termination really does abandon index descent.
//!
//! Plus the acceptance regression: prepare once, execute N bindings,
//! with plan-cache hits ≥ N−1 reported in the session statistics.

mod common;

use common::{assert_outputs_bitwise_equal, corpus, db_with, indexed_db, walk_relation};
use proptest::prelude::*;
use similarity_queries::prelude::*;
use similarity_queries::query::QueryOutput;

/// One random parameterizable query: the template text, its positional
/// bindings, and the equivalent literal text.
#[derive(Debug, Clone)]
struct Case {
    template: String,
    params: Vec<Value>,
    literal: String,
}

fn transform_strategy() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just(""),
        Just(" USING mavg(5) ON BOTH"),
        Just(" USING reverse ON BOTH"),
    ]
}

fn force_strategy() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just(""), Just(" FORCE SCAN")]
}

fn case_strategy(rows: usize) -> impl Strategy<Value = Case> {
    prop_oneof![
        // Range by row id, parameterized (row, eps).
        (0..rows, 0.1f64..6.0, transform_strategy(), force_strategy()).prop_map(
            |(row, eps, t, f)| {
                Case {
                    template: format!("FIND SIMILAR TO ROW ? IN r{t} EPSILON ?{f}"),
                    params: vec![Value::from(row), Value::from(eps)],
                    literal: format!("FIND SIMILAR TO ROW {row} IN r{t} EPSILON {eps}{f}"),
                }
            }
        ),
        // kNN, parameterized (k, row).
        (1usize..8, 0..rows, force_strategy()).prop_map(|(k, row, f)| Case {
            template: format!("FIND $k NEAREST TO ROW $row IN r{f}"),
            params: vec![Value::from(k), Value::from(row)],
            literal: format!("FIND {k} NEAREST TO ROW {row} IN r{f}"),
        }),
        // Range with a MEAN window, parameterized (row, tol, eps) — the
        // window's lexical position precedes EPSILON, pinning positional
        // ordering.
        (0..rows, 0.1f64..3.0, 0.1f64..6.0, transform_strategy()).prop_map(|(row, tol, eps, t)| {
            Case {
                template: format!("FIND SIMILAR TO ROW ? IN r{t} MEAN WITHIN ? EPSILON ?"),
                params: vec![Value::from(row), Value::from(tol), Value::from(eps)],
                literal: format!(
                    "FIND SIMILAR TO ROW {row} IN r{t} MEAN WITHIN {tol} EPSILON {eps}"
                ),
            }
        }),
    ]
}

/// Executes a case both ways and asserts bitwise-identical outputs.
fn assert_case_equivalent(db: &Database, case: &Case, what: &str) {
    let session = Session::new(db);
    let prepared = session.prepare(&case.template).unwrap();
    let (positional, named): (Vec<_>, Vec<_>) = {
        // kNN templates use named parameters $k/$row (in that order).
        if case.template.contains("$k") {
            (
                Vec::new(),
                vec![
                    ("k", case.params[0].clone()),
                    ("row", case.params[1].clone()),
                ],
            )
        } else {
            (case.params.clone(), Vec::new())
        }
    };
    let bound = prepared.bind_all(&positional, &named).unwrap();
    let via_session = session.execute(&bound).unwrap();
    let via_text = execute(db, &case.literal).unwrap();
    assert_outputs_bitwise_equal(&via_session, &via_text, what);
    // The prepare planted the plan: execution must have hit the cache.
    assert_eq!(via_session.stats.plan_cache_hits, 1, "{what}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// (a) prepared+bound == literal text, serial and at 4 threads,
    /// in memory and after a snapshot round-trip.
    #[test]
    fn prepared_equals_literal_execution(
        seed in 0u64..300,
        cases in prop::collection::vec(case_strategy(30), 1..6),
    ) {
        let series = corpus(seed, 30, 64);
        let mut db = db_with(&series, FeatureScheme::paper_default());
        let path = std::env::temp_dir().join(format!("simq-prep-eq-{seed}.simq"));
        db.save_snapshot(&path).unwrap();
        let mut reopened = Database::open_snapshot(&path).unwrap();
        std::fs::remove_file(&path).ok();
        for threads in [1usize, 4] {
            let parallelism = if threads == 1 {
                Parallelism::Serial
            } else {
                Parallelism::Fixed(threads)
            };
            db.set_parallelism(parallelism);
            reopened.set_parallelism(parallelism);
            for (i, case) in cases.iter().enumerate() {
                assert_case_equivalent(&db, case, &format!("case {i} ({threads} threads)"));
                assert_case_equivalent(
                    &reopened,
                    case,
                    &format!("case {i} ({threads} threads, reopened)"),
                );
            }
        }
    }

    /// (b) draining a cursor equals the materialized output, for index
    /// range, scan range and kNN paths.
    #[test]
    fn cursor_drain_equals_materialized_output(
        seed in 0u64..200,
        row in 0usize..25,
        eps in 0.5f64..8.0,
        k in 1usize..9,
        force_scan in prop_oneof![Just(false), Just(true)],
    ) {
        let series = corpus(seed.wrapping_add(131), 25, 64);
        let db = db_with(&series, FeatureScheme::paper_default());
        let session = Session::new(&db);
        let force = if force_scan { " FORCE SCAN" } else { "" };
        for text in [
            format!("FIND SIMILAR TO ROW {row} IN r EPSILON {eps}{force}"),
            format!("FIND {k} NEAREST TO ROW {row} IN r{force}"),
        ] {
            let materialized = execute(&db, &text).unwrap();
            let QueryOutput::Hits(want) = &materialized.output else {
                panic!("expected hits");
            };
            let mut cursor = session.cursor_text(&text).unwrap();
            let drained = cursor.drain_sorted();
            prop_assert_eq!(drained.len(), want.len(), "{}", text);
            for (a, b) in drained.iter().zip(want) {
                prop_assert_eq!(a.id, b.id, "{}", text);
                prop_assert_eq!(&a.name, &b.name, "{}", text);
                prop_assert_eq!(a.distance.to_bits(), b.distance.to_bits(), "{}", text);
            }
        }
    }
}

/// (c) On the Figure 9 corpus (random walks, as in the fig9 bench), a
/// cursor consumed for only a handful of hits descends strictly fewer
/// index nodes than the full execution — and stops growing once dropped.
#[test]
fn partially_consumed_cursor_descends_less_of_the_index() {
    let db = indexed_db(walk_relation("r", 19970513, 2000, 64));
    let session = Session::new(&db);
    let prepared = session
        .prepare("FIND SIMILAR TO ROW ? IN r EPSILON ?")
        .unwrap();
    // A wide radius: many hits spread over many leaves.
    let bound = prepared
        .bind(&[Value::from(0usize), Value::from(60.0)])
        .unwrap();
    let full = session.execute(&bound).unwrap();
    let QueryOutput::Hits(full_hits) = &full.output else {
        panic!("expected hits");
    };
    assert!(
        full_hits.len() > 100,
        "corpus should produce many hits, got {}",
        full_hits.len()
    );
    assert!(full.stats.leaves_visited > 4, "{:?}", full.stats);

    let mut cursor = session.cursor(&bound).unwrap();
    for _ in 0..3 {
        assert!(cursor.next().is_some());
    }
    let partial = cursor.stats();
    assert!(
        partial.nodes_visited < full.stats.nodes_visited,
        "partial consumption visited {} nodes, full run {}",
        partial.nodes_visited,
        full.stats.nodes_visited
    );
    assert!(partial.verified == 3);
    // Dropping the cursor abandons the descent; a fully drained cursor
    // converges to the materializing traversal's node count.
    let mut drained = session.cursor(&bound).unwrap();
    let all = drained.drain_sorted();
    assert_eq!(all.len(), full_hits.len());
    assert_eq!(drained.stats().nodes_visited, full.stats.nodes_visited);
}

/// The acceptance regression: prepare once, bind/execute N times —
/// results bitwise-identical to N literal executions, plan-cache hits
/// ≥ N−1 in the session stats.
#[test]
fn prepare_once_execute_many_hits_the_plan_cache() {
    let series = corpus(42, 60, 64);
    let db = db_with(&series, FeatureScheme::paper_default());
    let session = Session::new(&db);
    let prepared = session
        .prepare("FIND SIMILAR TO ROW $row IN r USING mavg(5) ON BOTH EPSILON $eps")
        .unwrap();
    let n = 16u64;
    for i in 0..n {
        let row = (i * 7) % 60;
        let eps = 0.5 + i as f64 * 0.2;
        let bound = prepared
            .bind_named(&[("row", Value::from(row)), ("eps", Value::from(eps))])
            .unwrap();
        let via_session = session.execute(&bound).unwrap();
        let via_text = execute(
            &db,
            &format!("FIND SIMILAR TO ROW {row} IN r USING mavg(5) ON BOTH EPSILON {eps}"),
        )
        .unwrap();
        assert_outputs_bitwise_equal(&via_session, &via_text, &format!("binding {i}"));
    }
    let stats = session.stats();
    assert!(
        stats.plan_cache_hits >= n - 1,
        "expected ≥ {} plan-cache hits, got {}",
        n - 1,
        stats.plan_cache_hits
    );
    assert_eq!(stats.plan_cache_misses, 1); // the prepare itself
    assert_eq!(stats.executions, n);
}

/// A prepared batch through the session: plans come from the cache and
/// every slot equals its individual execution bitwise; duplicate
/// bindings dedup verification without changing any output.
#[test]
fn prepared_batch_equals_individual_and_dedups_duplicates() {
    let series = corpus(7, 120, 64);
    let db = db_with(&series, FeatureScheme::paper_default());
    let session = Session::new(&db);
    let prepared = session
        .prepare("FIND SIMILAR TO ROW ? IN r EPSILON ?")
        .unwrap();
    let bindings: Vec<(usize, f64)> = (0..12)
        .map(|i| ((i * 11) % 120, 0.8 + (i % 5) as f64 * 0.5))
        // Repeat the first four bindings: identical verification classes.
        .chain((0..4).map(|i| ((i * 11) % 120, 0.8 + (i % 5) as f64 * 0.5)))
        .collect();
    let bounds: Vec<Bound> = bindings
        .iter()
        .map(|&(row, eps)| {
            prepared
                .bind(&[Value::from(row), Value::from(eps)])
                .unwrap()
        })
        .collect();
    let batch = session.execute_batch(&bounds);
    assert_eq!(batch.results.len(), bounds.len());
    assert!(batch.stats.merged.plan_cache_hits >= bounds.len() as u64);
    assert!(
        batch.stats.deduped_verifications > 0,
        "duplicate bindings must dedup verification"
    );
    for (i, &(row, eps)) in bindings.iter().enumerate() {
        let individual = execute(
            &db,
            &format!("FIND SIMILAR TO ROW {row} IN r EPSILON {eps}"),
        )
        .unwrap();
        assert_outputs_bitwise_equal(
            batch.results[i].as_ref().unwrap(),
            &individual,
            &format!("slot {i}"),
        );
    }
}
