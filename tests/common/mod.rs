//! Shared fixtures for the integration suites: seeded corpus builders,
//! relation/database constructors and query helpers that every test file
//! used to carry its own copy of.
//!
//! Each integration test binary compiles this module independently and
//! uses the subset it needs, hence the file-wide `dead_code` allowance.

#![allow(dead_code)]

use similarity_queries::prelude::*;
use similarity_queries::query::{QueryError, QueryResult};

/// Builds a deterministic corpus of random-walk series.
pub fn corpus(seed: u64, rows: usize, len: usize) -> Vec<Vec<f64>> {
    let mut gen = WalkGenerator::new(seed);
    (0..rows).map(|_| gen.series(len)).collect()
}

/// Builds a relation named `name` over a seeded random-walk corpus, under
/// the paper's default 6-d feature scheme.
pub fn walk_relation(name: &str, seed: u64, rows: usize, len: usize) -> SeriesRelation {
    let mut gen = WalkGenerator::new(seed);
    let mut rel = SeriesRelation::new(name, len, FeatureScheme::paper_default());
    for i in 0..rows {
        rel.insert(format!("S{i:04}"), gen.series(len)).unwrap();
    }
    rel
}

/// Builds a relation named `r` from explicit series under an arbitrary
/// feature scheme (rows are named `S0`, `S1`, …).
pub fn relation_with(series: &[Vec<f64>], scheme: FeatureScheme) -> SeriesRelation {
    let mut rel = SeriesRelation::new("r", series[0].len(), scheme);
    for (i, s) in series.iter().enumerate() {
        rel.insert(format!("S{i}"), s.clone()).unwrap();
    }
    rel
}

/// Applies the `SIMQ_THREADS` environment variable (if set and valid) to
/// a freshly built database. CI runs the whole workspace suite a second
/// time with `SIMQ_THREADS=4`, so every test built on these fixtures
/// exercises the parallel execution paths without opting in; tests that
/// pin a parallelism explicitly still override it with
/// `set_parallelism`. Invalid settings are ignored (the binary's
/// validation has its own CLI-level tests).
pub fn apply_env_parallelism(db: &mut Database) {
    let Ok(setting) = std::env::var("SIMQ_THREADS") else {
        return;
    };
    let parallelism = match setting.trim() {
        "" | "1" | "serial" => Parallelism::Serial,
        "auto" => Parallelism::Auto,
        word => match word.parse::<usize>() {
            Ok(n) if n >= 1 => Parallelism::Fixed(n),
            _ => return,
        },
    };
    db.set_parallelism(parallelism);
}

/// Applies the `SIMQ_WAL` environment variable (any non-empty value) to a
/// freshly built database by attaching a write-ahead-logged durable
/// directory under the system temp dir. CI runs the workspace suite an
/// extra time with `SIMQ_WAL=1`, so every test built on these fixtures
/// also exercises the durable write path (initial checkpoint + per-shard
/// WAL appends) without opting in. Each database gets its own unique
/// directory — tests run concurrently within one binary.
pub fn apply_env_wal(db: &mut Database) {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    if std::env::var("SIMQ_WAL").is_ok_and(|v| !v.is_empty()) {
        let dir = std::env::temp_dir().join(format!(
            "simq-test-wal-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed),
        ));
        db.attach_wal(&dir)
            .expect("attaching a test WAL directory succeeds");
    }
}

/// Applies the `SIMQ_GROUP_COMMIT` environment variable (any non-empty
/// value other than `0`) to a freshly built database: single-record
/// inserts then route through per-shard write groups. CI runs the
/// workspace suite an extra time with it on, so every insert-exercising
/// test also covers the group-commit path without opting in.
pub fn apply_env_group_commit(db: &mut Database) {
    if std::env::var("SIMQ_GROUP_COMMIT").is_ok_and(|v| !v.is_empty() && v != "0") {
        db.set_group_commit(true);
    }
}

/// Registers one relation into a fresh database with a bulk-loaded index.
pub fn indexed_db(rel: SeriesRelation) -> Database {
    let mut db = Database::new();
    db.add_relation_indexed(rel);
    apply_env_parallelism(&mut db);
    apply_env_wal(&mut db);
    apply_env_group_commit(&mut db);
    db
}

/// [`relation_with`] + [`indexed_db`]: the one-call database builder the
/// property tests use.
pub fn db_with(series: &[Vec<f64>], scheme: FeatureScheme) -> Database {
    indexed_db(relation_with(series, scheme))
}

/// A database named `r` of seeded random walks under an arbitrary scheme,
/// with or without an index (the planner-matrix builder).
pub fn scheme_db(rep: Representation, stats: bool, indexed: bool) -> Database {
    let scheme = FeatureScheme::new(2, rep, stats);
    let mut gen = WalkGenerator::new(1);
    let mut rel = SeriesRelation::new("r", 64, scheme);
    for i in 0..50 {
        rel.insert(format!("S{i}"), gen.series(64)).unwrap();
    }
    let mut d = Database::new();
    if indexed {
        d.add_relation_indexed(rel);
    } else {
        d.add_relation(rel);
    }
    apply_env_parallelism(&mut d);
    apply_env_wal(&mut d);
    apply_env_group_commit(&mut d);
    d
}

/// Executes `q` and returns the hit ids (panics on non-hit output).
pub fn hit_ids(db: &Database, q: &str) -> Vec<u64> {
    let result = execute(db, q).unwrap();
    match result.output {
        QueryOutput::Hits(h) => h.into_iter().map(|x| x.id).collect(),
        other => panic!("expected hits, got {other:?}"),
    }
}

/// Executes `q` and returns the chosen access path.
pub fn access(db: &Database, q: &str) -> AccessPath {
    execute(db, q).unwrap().plan.access
}

/// Asserts two query results carry identical outputs — same ids/names in
/// the same order, with bitwise-equal distances (the equivalence contract
/// of the parallel, persistence and batch subsystems).
pub fn assert_outputs_bitwise_equal(a: &QueryResult, b: &QueryResult, what: &str) {
    assert_output_values_bitwise_equal(&a.output, &b.output, what);
}

/// The output-level body of [`assert_outputs_bitwise_equal`]; recursive so
/// `EXPLAIN ANALYZE` wrappers compare by their inner output.
pub fn assert_output_values_bitwise_equal(a: &QueryOutput, b: &QueryOutput, what: &str) {
    match (a, b) {
        (QueryOutput::Hits(x), QueryOutput::Hits(y)) => {
            assert_eq!(x.len(), y.len(), "{what}");
            for (h, g) in x.iter().zip(y) {
                assert_eq!(h.id, g.id, "{what}");
                assert_eq!(h.name, g.name, "{what}");
                assert_eq!(
                    h.distance.to_bits(),
                    g.distance.to_bits(),
                    "{what}: {} vs {}",
                    h.distance,
                    g.distance
                );
            }
        }
        (QueryOutput::Pairs(x), QueryOutput::Pairs(y)) => {
            assert_eq!(x.len(), y.len(), "{what}");
            for (h, g) in x.iter().zip(y) {
                assert_eq!((h.a, h.b), (g.a, g.b), "{what}");
                assert_eq!(h.distance.to_bits(), g.distance.to_bits(), "{what}");
            }
        }
        (QueryOutput::Plan(x), QueryOutput::Plan(y)) => assert_eq!(x, y, "{what}"),
        // EXPLAIN ANALYZE reports carry wall-clock timings and so are never
        // bitwise comparable; the *inner* outputs must be.
        (QueryOutput::Analyzed { output: x, .. }, QueryOutput::Analyzed { output: y, .. }) => {
            assert_output_values_bitwise_equal(x, y, what);
        }
        other => panic!("mismatched outputs for {what}: {other:?}"),
    }
}

/// Asserts two per-query outcomes agree: both the same error variant, or
/// both results with bitwise-equal outputs.
pub fn assert_outcomes_equal(
    a: &Result<QueryResult, QueryError>,
    b: &Result<QueryResult, QueryError>,
    what: &str,
) {
    match (a, b) {
        (Ok(x), Ok(y)) => assert_outputs_bitwise_equal(x, y, what),
        (Err(x), Err(y)) => assert_eq!(x, y, "{what}"),
        other => panic!("outcome mismatch for {what}: {other:?}"),
    }
}

/// Runs `query` serially and at `threads` workers, asserting identical
/// outputs and a sane reported fan-out.
pub fn assert_parallel_equivalent(db: &mut Database, query: &str, threads: usize) {
    db.set_parallelism(Parallelism::Serial);
    let serial = execute(db, query).unwrap();
    db.set_parallelism(Parallelism::Fixed(threads));
    let parallel = execute(db, query).unwrap();
    // threads_used reports the actual fan-out; a degraded parallel plan
    // (few rows, tiny frontier) may cap it below the configured count.
    assert!(
        (1..=threads as u64).contains(&parallel.stats.threads_used),
        "{query}: threads_used {}",
        parallel.stats.threads_used
    );
    assert_outputs_bitwise_equal(&serial, &parallel, &format!("{query} (threads {threads})"));
}
