//! The planner's decision matrix: which (representation, transformation,
//! strategy) combinations use the index, which fall back to the scan, and
//! which fail loudly.

mod common;

use common::{access, scheme_db as db};
use similarity_queries::prelude::*;
use similarity_queries::query::QueryError;

#[test]
fn polar_index_serves_complex_multiplier_transforms() {
    let d = db(Representation::Polar, true, true);
    for t in [
        "mavg(5)",
        "warp(2)",
        "reverse",
        "scale(-3)",
        "shift(2)",
        "reverse THEN mavg(10)",
    ] {
        let q = format!("FIND SIMILAR TO ROW 0 IN r USING {t} EPSILON 1");
        assert_eq!(access(&d, &q), AccessPath::IndexScan, "{t}");
    }
}

#[test]
fn rect_index_serves_real_multiplier_transforms_only() {
    let d = db(Representation::Rectangular, true, true);
    for (t, expect_index) in [
        ("reverse", true),
        ("scale(2)", true),
        ("scale(-1)", true),
        ("shift(3)", true),
        ("identity", true),
        ("mavg(5)", false),
        ("warp(2)", false),
        ("reverse THEN mavg(10)", false),
    ] {
        let q = format!("FIND SIMILAR TO ROW 0 IN r USING {t} EPSILON 1");
        let got = access(&d, &q);
        if expect_index {
            assert_eq!(got, AccessPath::IndexScan, "{t}");
        } else {
            assert!(matches!(got, AccessPath::SeqScan { .. }), "{t}: {got:?}");
        }
    }
}

#[test]
fn force_index_errors_carry_the_reason() {
    let d = db(Representation::Rectangular, true, true);
    let err = execute(
        &d,
        "FIND SIMILAR TO ROW 0 IN r USING mavg(5) EPSILON 1 FORCE INDEX",
    )
    .unwrap_err();
    let QueryError::IndexUnavailable(reason) = err else {
        panic!("wrong error {err:?}");
    };
    assert!(
        reason.contains("not safe") || reason.contains("rectangular"),
        "{reason}"
    );
}

#[test]
fn knn_planner_matrix() {
    // Every indexed scheme serves kNN via the spectral MINDIST bound; an
    // unindexed relation or an unsafe transformation falls back to scan.
    for (rep, stats) in [
        (Representation::Polar, true),
        (Representation::Polar, false),
        (Representation::Rectangular, true),
        (Representation::Rectangular, false),
    ] {
        let d = db(rep, stats, true);
        assert_eq!(
            access(&d, "FIND 3 NEAREST TO ROW 0 IN r"),
            AccessPath::IndexScan,
            "{rep:?} stats={stats}"
        );
    }
    let unindexed = db(Representation::Polar, true, false);
    assert!(matches!(
        access(&unindexed, "FIND 3 NEAREST TO ROW 0 IN r"),
        AccessPath::SeqScan { .. }
    ));
    // Unsafe transformation on the rectangular index: scan.
    let rect = db(Representation::Rectangular, true, true);
    assert!(matches!(
        access(&rect, "FIND 3 NEAREST TO ROW 0 IN r USING mavg(5)"),
        AccessPath::SeqScan { .. }
    ));
}

#[test]
fn join_methods_map_to_access_paths() {
    let d = db(Representation::Polar, true, true);
    let cases = [
        (
            'a',
            AccessPath::ScanJoin {
                early_abandon: false,
            },
        ),
        (
            'b',
            AccessPath::ScanJoin {
                early_abandon: true,
            },
        ),
        ('c', AccessPath::IndexProbeJoin { transformed: false }),
        ('d', AccessPath::IndexProbeJoin { transformed: true }),
    ];
    for (m, expected) in cases {
        let q = format!("FIND PAIRS IN r USING mavg(5) EPSILON 1 METHOD {m}");
        assert_eq!(access(&d, &q), expected, "method {m}");
    }
}

#[test]
fn index_only_join_methods_fail_without_index() {
    let d = db(Representation::Polar, true, false);
    for m in ['c', 'd'] {
        let err = execute(&d, &format!("FIND PAIRS IN r EPSILON 1 METHOD {m}")).unwrap_err();
        assert!(matches!(err, QueryError::IndexUnavailable(_)), "method {m}");
    }
    // Scan methods still work.
    for m in ['a', 'b'] {
        assert!(execute(&d, &format!("FIND PAIRS IN r EPSILON 1 METHOD {m}")).is_ok());
    }
}

#[test]
fn method_d_requires_safe_right_side() {
    let d = db(Representation::Rectangular, true, true);
    // mavg is unsafe on the rect index: method d must refuse...
    let err = execute(&d, "FIND PAIRS IN r USING mavg(5) EPSILON 1 METHOD d").unwrap_err();
    assert!(matches!(err, QueryError::IndexUnavailable(_)));
    // ...but the asymmetric form with a safe right side is fine.
    let ok = execute(
        &d,
        "FIND PAIRS IN r MATCHING mavg(5) AGAINST reverse EPSILON 1 METHOD d",
    );
    assert!(ok.is_ok(), "{ok:?}");
    // And scan methods always accept it.
    assert!(execute(&d, "FIND PAIRS IN r USING mavg(5) EPSILON 1 METHOD b").is_ok());
}

#[test]
fn explain_never_executes() {
    let d = db(Representation::Polar, true, true);
    let r = execute(
        &d,
        "EXPLAIN FIND PAIRS IN r USING mavg(5) EPSILON 1 METHOD a",
    )
    .unwrap();
    assert!(matches!(r.output, QueryOutput::Plan(_)));
    assert_eq!(r.stats.rows_scanned, 0);
    assert_eq!(r.stats.nodes_visited, 0);
}

#[test]
fn stats_windows_constrain_range_answers() {
    use similarity_queries::query::QueryOutput;
    // GK95 windows: identical sine shapes at different levels/scales.
    let scheme = FeatureScheme::paper_default();
    let mut rel = SeriesRelation::new("r", 64, scheme);
    for i in 0..40u64 {
        let level = 10.0 + i as f64; // distinct means
        let series: Vec<f64> = (0..64)
            .map(|t| level + (t as f64 * 0.2).sin() * 2.0)
            .collect();
        rel.insert(format!("S{i}"), series).unwrap();
    }
    let mut d = Database::new();
    d.add_relation_indexed(rel);

    // Same normal form everywhere: without a window every row matches.
    let all = execute(&d, "FIND SIMILAR TO ROW 5 IN r EPSILON 0.01").unwrap();
    let QueryOutput::Hits(all_hits) = all.output else {
        unreachable!()
    };
    assert_eq!(all_hits.len(), 40);

    // With a mean window only nearby price levels qualify.
    let windowed = execute(
        &d,
        "FIND SIMILAR TO ROW 5 IN r EPSILON 0.01 MEAN WITHIN 2.5",
    )
    .unwrap();
    assert_eq!(windowed.plan.access, AccessPath::IndexScan);
    let QueryOutput::Hits(hits) = windowed.output else {
        unreachable!()
    };
    let mut ids: Vec<u64> = hits.iter().map(|h| h.id).collect();
    ids.sort_unstable();
    // Rows 3..=7 have means within 2.5 of row 5's.
    assert_eq!(ids, vec![3, 4, 5, 6, 7], "{ids:?}");
    // Fewer candidates than the unwindowed query: the window prunes in
    // the index, not only in postprocessing.
    assert!(windowed.stats.candidates < all.stats.candidates);

    // Scan path agrees.
    let scanned = execute(
        &d,
        "FIND SIMILAR TO ROW 5 IN r EPSILON 0.01 MEAN WITHIN 2.5 FORCE SCAN",
    )
    .unwrap();
    let QueryOutput::Hits(scan_hits) = scanned.output else {
        unreachable!()
    };
    let mut scan_ids: Vec<u64> = scan_hits.iter().map(|h| h.id).collect();
    scan_ids.sort_unstable();
    assert_eq!(scan_ids, vec![3, 4, 5, 6, 7]);
}

#[test]
fn stats_window_requires_stats_dims_for_index() {
    let d = db(Representation::Polar, false, true); // no stats dims
    let r = execute(&d, "FIND SIMILAR TO ROW 0 IN r EPSILON 1 MEAN WITHIN 1.0").unwrap();
    assert!(matches!(r.plan.access, AccessPath::SeqScan { .. }));
    assert!(r.plan.reason.contains("statistics dimensions"));
}
