//! Observability must observe, never steer: toggling span tracing on
//! cannot change what any query computes — results stay bitwise
//! identical and every schedule-independent work counter stays *equal*,
//! not merely close.
//!
//! Covered surface: range (index and forced scan), kNN, all-pairs joins,
//! prepared statements, streaming cursors and batches, each at 1 and 4
//! threads over 1 and 4 shards; plus `EXPLAIN ANALYZE`, whose inner
//! output must be bitwise identical to the uninstrumented run of the
//! same query.
//!
//! The global tracing toggle is process-wide, so every test that flips
//! it holds one mutex — the toggle tests serialize against each other
//! but not against the rest of the suite (whose correctness cannot
//! depend on the flag; that is the very property under test).
//!
//! Counter comparisons are scoped to schedule-independent
//! configurations: serial runs compare everything, parallel non-kNN
//! runs compare merged totals (dynamic subtree claiming moves shares
//! *between* threads but cannot change the total work), and parallel
//! kNN compares outputs only — its shared k-th-best bound makes even
//! merged node/coefficient counts timing-dependent between any two
//! runs, traced or not (the partition invariant for those lives in
//! `tests/stats_consistency.rs`).

mod common;

use common::{assert_outputs_bitwise_equal, corpus, relation_with};
use similarity_queries::obs::span;
use similarity_queries::prelude::*;
use similarity_queries::query::{Hit, QueryResult};
use std::sync::Mutex;

static TRACE_LOCK: Mutex<()> = Mutex::new(());

/// Query forms under test (row 0 always exists in the fixtures).
fn query_matrix() -> Vec<String> {
    vec![
        "FIND SIMILAR TO ROW 0 IN r EPSILON 3.0".into(),
        "FIND SIMILAR TO ROW 0 IN r USING mavg(5) ON BOTH EPSILON 2.0".into(),
        "FIND SIMILAR TO ROW 0 IN r EPSILON 3.0 FORCE SCAN".into(),
        "FIND 5 NEAREST TO ROW 0 IN r".into(),
        "FIND 5 NEAREST TO ROW 0 IN r FORCE SCAN".into(),
        "FIND PAIRS IN r EPSILON 4.0 METHOD b".into(),
        "FIND PAIRS IN r USING mavg(5) EPSILON 3.0 METHOD d".into(),
    ]
}

/// A database over a seeded corpus: unsharded when `shards == 1`.
fn build_db(shards: usize, threads: usize) -> Database {
    let series = corpus(97, 60, 64);
    let rel = relation_with(&series, FeatureScheme::paper_default());
    let mut db = Database::new();
    if shards > 1 {
        db.add_relation_sharded(rel, shards);
    } else {
        db.add_relation_indexed(rel);
    }
    db.set_parallelism(if threads > 1 {
        Parallelism::Fixed(threads)
    } else {
        Parallelism::Serial
    });
    db
}

/// Work counters that must not move when tracing turns on, scoped to
/// what two independent runs can be expected to agree on (see the
/// module docs): everything when serial, merged totals when parallel
/// without a shared pruning bound, nothing when parallel kNN.
fn assert_stats_equal(
    off: &QueryResult,
    on: &QueryResult,
    threads: usize,
    shared_bound: bool,
    what: &str,
) {
    if threads == 1 {
        assert_eq!(off.stats, on.stats, "{what}: merged stats moved");
        assert_eq!(
            off.per_thread, on.per_thread,
            "{what}: per-thread stats moved"
        );
        assert_eq!(off.per_shard, on.per_shard, "{what}: per-shard stats moved");
    } else if !shared_bound {
        assert_eq!(off.stats, on.stats, "{what}: merged stats moved");
    }
}

/// Whether a query form prunes against a shared k-th-best bound (the
/// one execution phase whose counters are timing-dependent).
fn uses_shared_bound(q: &str) -> bool {
    q.contains("NEAREST")
}

#[test]
fn tracing_is_inert_for_every_query_form() {
    let _guard = TRACE_LOCK.lock().unwrap();
    for shards in [1usize, 4] {
        for threads in [1usize, 4] {
            let db = build_db(shards, threads);
            for q in query_matrix() {
                let label = format!("{q} (threads {threads}, shards {shards})");
                span::set_tracing(false);
                let off = execute(&db, &q).expect("query runs with tracing off");
                span::set_tracing(true);
                let on = execute(&db, &q).expect("query runs with tracing on");
                let records = span::take_records();
                span::set_tracing(false);
                assert!(
                    !records.is_empty(),
                    "{label}: tracing on collected no spans"
                );
                assert_outputs_bitwise_equal(&off, &on, &label);
                assert_stats_equal(&off, &on, threads, uses_shared_bound(&q), &label);
            }
        }
    }
}

#[test]
fn tracing_is_inert_for_prepared_statements_and_cursors() {
    let _guard = TRACE_LOCK.lock().unwrap();
    for shards in [1usize, 4] {
        for threads in [1usize, 4] {
            let db = build_db(shards, threads);
            let label = format!("prepared/cursor (threads {threads}, shards {shards})");

            let run = |tracing: bool| -> (QueryResult, Vec<Hit>) {
                span::set_tracing(tracing);
                let session = Session::new(&db);
                let p = session
                    .prepare("FIND SIMILAR TO ROW ? IN r EPSILON ?")
                    .unwrap();
                let bound = p.bind(&[Value::from(0u64), Value::from(25.0)]).unwrap();
                let executed = session.execute(&bound).unwrap();
                let streamed: Vec<Hit> = session.cursor(&bound).unwrap().collect();
                let _ = span::take_records();
                span::set_tracing(false);
                (executed, streamed)
            };
            let (exec_off, stream_off) = run(false);
            let (exec_on, stream_on) = run(true);

            assert_outputs_bitwise_equal(&exec_off, &exec_on, &label);
            assert_stats_equal(&exec_off, &exec_on, threads, false, &label);
            assert_eq!(stream_off.len(), stream_on.len(), "{label}");
            for (a, b) in stream_off.iter().zip(&stream_on) {
                assert_eq!(a.id, b.id, "{label}");
                assert_eq!(a.distance.to_bits(), b.distance.to_bits(), "{label}");
            }
        }
    }
}

#[test]
fn tracing_is_inert_for_batches() {
    let _guard = TRACE_LOCK.lock().unwrap();
    let texts = [
        "FIND SIMILAR TO ROW 0 IN r EPSILON 3.0",
        "FIND SIMILAR TO ROW 1 IN r EPSILON 3.0",
        "FIND SIMILAR TO ROW 2 IN r EPSILON 2.0",
        "FIND 4 NEAREST TO ROW 3 IN r",
    ];
    for shards in [1usize, 4] {
        for threads in [1usize, 4] {
            let db = build_db(shards, threads);
            let label = format!("batch (threads {threads}, shards {shards})");

            span::set_tracing(false);
            let off = execute_batch(&db, &texts);
            span::set_tracing(true);
            let on = execute_batch(&db, &texts);
            let _ = span::take_records();
            span::set_tracing(false);

            // The batch contains a kNN member, so its counters are only
            // schedule-independent when execution is serial.
            if threads == 1 {
                assert_eq!(off.stats.merged, on.stats.merged, "{label}");
                assert_eq!(
                    off.stats.per_query_total, on.stats.per_query_total,
                    "{label}"
                );
            }
            for (i, (a, b)) in off.results.iter().zip(&on.results).enumerate() {
                let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
                assert_outputs_bitwise_equal(a, b, &format!("{label} [{i}]"));
            }
        }
    }
}

#[test]
fn explain_analyze_output_is_bitwise_identical_to_plain_execution() {
    let _guard = TRACE_LOCK.lock().unwrap();
    span::set_tracing(false);
    for shards in [1usize, 4] {
        for threads in [1usize, 4] {
            let db = build_db(shards, threads);
            for q in query_matrix() {
                let label = format!("ANALYZE {q} (threads {threads}, shards {shards})");
                let plain = execute(&db, &q).expect("plain query runs");
                let analyzed =
                    execute(&db, &format!("EXPLAIN ANALYZE {q}")).expect("analyzed query runs");
                let QueryOutput::Analyzed { report, output } = &analyzed.output else {
                    panic!("{label}: expected an Analyzed output");
                };
                assert!(report.contains("operators:"), "{label}: report\n{report}");
                assert!(report.contains("total:"), "{label}");
                // The wrapper carries the inner run's counters verbatim
                // (comparable against a separate plain run only when the
                // counters are schedule-independent).
                if threads == 1 || !uses_shared_bound(&q) {
                    assert_eq!(plain.stats, analyzed.stats, "{label}");
                }
                let unwrapped = QueryResult {
                    output: (**output).clone(),
                    plan: analyzed.plan.clone(),
                    stats: analyzed.stats,
                    per_thread: analyzed.per_thread.clone(),
                    per_shard: analyzed.per_shard.clone(),
                };
                assert_outputs_bitwise_equal(&plain, &unwrapped, &label);
            }
        }
    }
}

#[test]
fn analyze_in_a_batch_matches_plain_execution() {
    let _guard = TRACE_LOCK.lock().unwrap();
    span::set_tracing(false);
    let db = build_db(4, 4);
    let plain = execute(&db, "FIND SIMILAR TO ROW 0 IN r EPSILON 3.0").unwrap();
    let batch = execute_batch(
        &db,
        &[
            "EXPLAIN ANALYZE FIND SIMILAR TO ROW 0 IN r EPSILON 3.0",
            "FIND SIMILAR TO ROW 1 IN r EPSILON 3.0",
        ],
    );
    let analyzed = batch.results[0].as_ref().unwrap();
    let QueryOutput::Analyzed { output, .. } = &analyzed.output else {
        panic!("expected an Analyzed output from the batch");
    };
    let unwrapped = QueryResult {
        output: (**output).clone(),
        plan: analyzed.plan.clone(),
        stats: analyzed.stats,
        per_thread: analyzed.per_thread.clone(),
        per_shard: analyzed.per_shard.clone(),
    };
    assert_outputs_bitwise_equal(&plain, &unwrapped, "batched ANALYZE");
}

#[test]
fn spans_collect_nothing_while_tracing_is_off() {
    let _guard = TRACE_LOCK.lock().unwrap();
    span::set_tracing(false);
    let _ = span::take_records();
    let db = build_db(4, 4);
    for q in query_matrix() {
        let _ = execute(&db, &q).unwrap();
    }
    assert!(
        span::take_records().is_empty(),
        "spans were recorded with tracing off"
    );
}
