//! The batched-execution contract as executable properties: running any
//! mix of queries through [`execute_batch`] returns, query for query,
//! exactly what one-at-a-time execution returns — same hits, same names,
//! bitwise-identical distances, same errors — at 1 and 4 threads, against
//! the in-memory database and against a snapshot-reloaded one. The batch
//! is allowed to differ in only one observable: **work**. The acceptance
//! regression pins that too: a 64-query range batch's merged node-visit
//! count is strictly less than the sum of the 64 individual executions.

mod common;

use common::{assert_outcomes_equal, assert_outputs_bitwise_equal, corpus, db_with};
use proptest::prelude::*;
use similarity_queries::prelude::*;
use similarity_queries::query::{execute_batch, QueryError, QueryResult};

/// Executes `texts` one at a time — the reference the batch must match.
fn one_at_a_time(db: &Database, texts: &[&str]) -> Vec<Result<QueryResult, QueryError>> {
    texts.iter().map(|q| execute(db, q)).collect()
}

/// Asserts batch results equal individual execution, serially and at 4
/// threads.
fn assert_batch_equivalent(db: &mut Database, queries: &[String]) {
    let texts: Vec<&str> = queries.iter().map(String::as_str).collect();
    for threads in [1usize, 4] {
        db.set_parallelism(if threads == 1 {
            Parallelism::Serial
        } else {
            Parallelism::Fixed(threads)
        });
        let individual = one_at_a_time(db, &texts);
        let batch = execute_batch(db, &texts);
        assert_eq!(batch.results.len(), individual.len());
        for (i, (got, want)) in batch.results.iter().zip(&individual).enumerate() {
            assert_outcomes_equal(got, want, &format!("{} (threads {threads})", texts[i]));
        }
    }
}

/// One random query of a mix: range (either access path, optional
/// transformation), kNN (either access path), or an all-pairs join.
fn query_strategy(rows: usize) -> impl Strategy<Value = String> {
    prop_oneof![
        (
            0..rows,
            0.1f64..6.0,
            prop_oneof![
                Just(""),
                Just(" USING mavg(5) ON BOTH"),
                Just(" USING reverse ON BOTH"),
            ],
            prop_oneof![Just(""), Just(" FORCE SCAN")],
        )
            .prop_map(|(row, eps, t, f)| format!(
                "FIND SIMILAR TO ROW {row} IN r{t} EPSILON {eps}{f}"
            )),
        (
            1usize..8,
            0..rows,
            prop_oneof![Just(""), Just(" FORCE SCAN")]
        )
            .prop_map(|(k, row, f)| format!("FIND {k} NEAREST TO ROW {row} IN r{f}")),
        (0.3f64..2.0, prop_oneof![Just('b'), Just('d')])
            .prop_map(|(eps, m)| format!("FIND PAIRS IN r USING mavg(8) EPSILON {eps} METHOD {m}")),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random mixes against the in-memory database.
    #[test]
    fn batch_equals_one_at_a_time(
        seed in 0u64..300,
        queries in prop::collection::vec(query_strategy(30), 2..12),
    ) {
        let series = corpus(seed, 30, 64);
        let mut db = db_with(&series, FeatureScheme::paper_default());
        assert_batch_equivalent(&mut db, &queries);
    }

    /// The same contract holds after a snapshot round-trip: the reopened
    /// database batches exactly like the built one executes individually.
    #[test]
    fn batch_equals_one_at_a_time_after_snapshot_reload(
        seed in 0u64..200,
        queries in prop::collection::vec(query_strategy(25), 2..8),
    ) {
        let series = corpus(seed.wrapping_add(47), 25, 64);
        let mut db = db_with(&series, FeatureScheme::paper_default());
        let path = std::env::temp_dir().join(format!("simq-batch-eq-{seed}.simq"));
        db.save_snapshot(&path).unwrap();
        let mut reopened = Database::open_snapshot(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_batch_equivalent(&mut reopened, &queries);
        // Cross-check: the reopened batch matches the in-memory originals.
        let texts: Vec<&str> = queries.iter().map(String::as_str).collect();
        db.set_parallelism(Parallelism::Serial);
        reopened.set_parallelism(Parallelism::Serial);
        let built = one_at_a_time(&db, &texts);
        let batch = execute_batch(&reopened, &texts);
        for (i, (got, want)) in batch.results.iter().zip(&built).enumerate() {
            assert_outcomes_equal(got, want, &format!("{} (reopened)", texts[i]));
        }
    }
}

/// The acceptance criterion: a 64-query range batch over one relation is
/// answer-identical to serial one-at-a-time execution, its per-query
/// node-visit counters equal the individual executions', and the merged
/// (shared-traversal) node-visit count is **strictly less** than the sum
/// of the individual executions'.
#[test]
fn batch_of_64_range_queries_shares_traversal() {
    let series = corpus(20260727, 400, 64);
    let db = db_with(&series, FeatureScheme::paper_default());
    let queries: Vec<String> = (0..64)
        .map(|i| {
            format!(
                "FIND SIMILAR TO ROW {} IN r EPSILON {:.2}",
                (i * 6) % 400,
                0.8 + (i % 9) as f64 * 0.45
            )
        })
        .collect();
    let texts: Vec<&str> = queries.iter().map(String::as_str).collect();

    let batch = execute_batch(&db, &texts);
    assert_eq!(batch.stats.shared_groups, 1);
    assert_eq!(batch.stats.grouped_queries, 64);

    let mut individual_nodes_sum = 0u64;
    for (i, q) in texts.iter().enumerate() {
        let individual = execute(&db, q).unwrap();
        let got = batch.results[i].as_ref().unwrap();
        assert_outputs_bitwise_equal(got, &individual, q);
        // The shared walk attributes to each query exactly the nodes its
        // own traversal would have read.
        assert_eq!(
            got.stats.nodes_visited, individual.stats.nodes_visited,
            "{q}"
        );
        individual_nodes_sum += individual.stats.nodes_visited;
    }
    assert!(
        batch.stats.merged.nodes_visited < individual_nodes_sum,
        "shared traversal must beat one-at-a-time: merged {} vs sum {}",
        batch.stats.merged.nodes_visited,
        individual_nodes_sum
    );
    assert_eq!(
        batch.stats.per_query_total.nodes_visited,
        individual_nodes_sum
    );
}

/// Batched kNN (the two-step index path) shares its step-2 traversal: the
/// merged node count of a kNN batch stays below the individual sum while
/// every answer list is bitwise identical.
#[test]
fn batch_of_knn_queries_shares_step_two() {
    let series = corpus(99, 300, 64);
    let db = db_with(&series, FeatureScheme::paper_default());
    let queries: Vec<String> = (0..24)
        .map(|i| format!("FIND {} NEAREST TO ROW {} IN r", 2 + i % 6, (i * 11) % 300))
        .collect();
    let texts: Vec<&str> = queries.iter().map(String::as_str).collect();
    let batch = execute_batch(&db, &texts);
    let mut sum = 0u64;
    for (i, q) in texts.iter().enumerate() {
        let individual = execute(&db, q).unwrap();
        assert_outputs_bitwise_equal(batch.results[i].as_ref().unwrap(), &individual, q);
        sum += individual.stats.nodes_visited;
    }
    assert!(
        batch.stats.merged.nodes_visited < sum,
        "merged {} vs sum {}",
        batch.stats.merged.nodes_visited,
        sum
    );
}
