//! The counter-breakdown contract of `QueryResult`: the `per_thread` and
//! `per_shard` vectors are *partitions* of the merged `stats`, not
//! estimates. Each search/scan counter lives in exactly one breakdown —
//! per-thread for single-relation parallel phases, per-shard for shard
//! fan-out — so across both vectors the shares sum exactly to the merged
//! totals. This hardens the `fold_*` helpers in `simq-query::exec`
//! against silently dropping a phase (the bug class the deferred
//! radius-coefficient fold in kNN exists to prevent).
//!
//! Coefficient comparisons hold the partition property too: sharded
//! executions that verify on the calling thread (serial, or parallel with
//! too few candidates to fan out) charge that work to a per-thread entry
//! created on demand, so the breakdown sum equals the merged count on
//! every path. (This suite used to document a `<=` gap exactly there.)

mod common;

use common::{corpus, relation_with};
use proptest::prelude::*;
use similarity_queries::prelude::*;
use similarity_queries::query::QueryResult;

fn query_matrix() -> Vec<String> {
    vec![
        "FIND SIMILAR TO ROW 0 IN r EPSILON 3.0".into(),
        "FIND SIMILAR TO ROW 0 IN r EPSILON 25.0".into(),
        "FIND SIMILAR TO ROW 0 IN r USING mavg(5) ON BOTH EPSILON 2.0".into(),
        "FIND SIMILAR TO ROW 0 IN r EPSILON 3.0 FORCE SCAN".into(),
        "FIND 5 NEAREST TO ROW 0 IN r".into(),
        "FIND 5 NEAREST TO ROW 0 IN r USING mavg(5) ON BOTH".into(),
        "FIND 5 NEAREST TO ROW 0 IN r FORCE SCAN".into(),
    ]
}

/// Asserts the partition property for one execution.
fn assert_breakdowns_sum(result: &QueryResult, label: &str) {
    let pt = &result.per_thread;
    let ps = &result.per_shard;
    if pt.is_empty() && ps.is_empty() {
        return; // fully serial, unsharded: no breakdowns to check
    }
    let sum = |f: fn(&similarity_queries::query::ExecStats) -> u64| -> u64 {
        pt.iter().map(f).sum::<u64>() + ps.iter().map(f).sum::<u64>()
    };
    assert_eq!(
        sum(|s| s.nodes_visited),
        result.stats.nodes_visited,
        "{label}: nodes_visited breakdown"
    );
    assert_eq!(
        sum(|s| s.leaves_visited),
        result.stats.leaves_visited,
        "{label}: leaves_visited breakdown"
    );
    assert_eq!(
        sum(|s| s.entries_tested),
        result.stats.entries_tested,
        "{label}: entries_tested breakdown"
    );
    assert_eq!(
        sum(|s| s.rows_scanned),
        result.stats.rows_scanned,
        "{label}: rows_scanned breakdown"
    );
    assert_eq!(
        sum(|s| s.coefficients_compared),
        result.stats.coefficients_compared,
        "{label}: coefficients_compared breakdown"
    );
}

fn db_over(series: &[Vec<f64>], shards: usize, threads: usize) -> Database {
    let rel = relation_with(series, FeatureScheme::paper_default());
    let mut db = Database::new();
    if shards > 1 {
        db.add_relation_sharded(rel, shards);
    } else {
        db.add_relation_indexed(rel);
    }
    db.set_parallelism(if threads > 1 {
        Parallelism::Fixed(threads)
    } else {
        Parallelism::Serial
    });
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Arbitrary corpora × shard counts × thread counts: per-thread and
    /// per-shard counters always partition the merged totals.
    #[test]
    fn breakdowns_partition_merged_stats(
        seed in 0u64..1_000,
        rows in 20usize..80,
        shards in 1usize..6,
        threads in 1usize..5,
    ) {
        let series = corpus(seed, rows, 64);
        let db = db_over(&series, shards, threads);
        for q in query_matrix() {
            let result = execute(&db, &q).expect("matrix query runs");
            assert_breakdowns_sum(
                &result,
                &format!("{q} (seed {seed}, rows {rows}, shards {shards}, threads {threads})"),
            );
        }
    }
}

#[test]
fn serial_unsharded_execution_reports_no_breakdowns() {
    let series = corpus(5, 40, 64);
    let db = db_over(&series, 1, 1);
    for q in query_matrix() {
        let result = execute(&db, &q).unwrap();
        assert!(result.per_thread.is_empty(), "{q}");
        assert!(result.per_shard.is_empty(), "{q}");
    }
}

#[test]
fn sharded_parallel_knn_keeps_radius_coefficients_in_the_breakdown() {
    // The regression this suite pins: in sharded-parallel kNN the
    // per-thread vector appears only at the verify phase, so the radius
    // coefficient work must be folded *after* it — otherwise the
    // breakdown undercounts exactly the radius comparisons.
    let series = corpus(11, 120, 64);
    let db = db_over(&series, 4, 4);
    let result = execute(&db, "FIND 10 NEAREST TO ROW 0 IN r").unwrap();
    assert!(
        !result.per_thread.is_empty(),
        "fixture too small: the verify phase did not fan out, so the test pins nothing"
    );
    assert_breakdowns_sum(&result, "sharded-parallel kNN");
}
