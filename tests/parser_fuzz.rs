//! Parser robustness as a property: `simq_query::parse` must never panic.
//! Whatever bytes or token soup comes in, the answer is `Ok(query)` or a
//! *structured* error — [`QueryError::Lex`] / [`QueryError::Parse`] with a
//! byte offset inside the input — never an index-out-of-bounds, a UTF-8
//! slice panic, or an unwrap on malformed numbers.

use proptest::prelude::*;
use similarity_queries::query::{parse, QueryError};

/// Parses and checks the no-panic / structured-error contract.
fn check(input: &str) {
    match parse(input) {
        Ok(_) => {}
        Err(QueryError::Lex { offset, .. }) => {
            assert!(
                offset <= input.len(),
                "lex offset {offset} outside input of {} bytes: {input:?}",
                input.len()
            );
        }
        Err(QueryError::Parse { offset, .. }) => {
            if let Some(o) = offset {
                assert!(
                    o <= input.len(),
                    "parse offset {o} outside input of {} bytes: {input:?}",
                    input.len()
                );
            }
        }
        Err(other) => panic!("parse returned a non-parser error for {input:?}: {other:?}"),
    }
}

/// One atom of a token-shaped stream: keywords, transformation names,
/// punctuation, numbers, identifiers and junk fragments, so the streams
/// exercise deep parser states (not just the lexer's first error).
fn atom() -> impl Strategy<Value = String> {
    prop_oneof![
        prop_oneof![
            Just("FIND"),
            Just("SIMILAR"),
            Just("TO"),
            Just("IN"),
            Just("EPSILON"),
            Just("NEAREST"),
            Just("PAIRS"),
            Just("USING"),
            Just("THEN"),
            Just("ON"),
            Just("BOTH"),
            Just("ONE"),
            Just("FORCE"),
            Just("SCAN"),
            Just("INDEX"),
            Just("ROW"),
            Just("NAME"),
            Just("MEAN"),
            Just("STD"),
            Just("WITHIN"),
            Just("METHOD"),
            Just("EXPLAIN"),
            Just("MATCHING"),
            Just("AGAINST"),
        ]
        .prop_map(str::to_string),
        prop_oneof![
            Just("mavg"),
            Just("wmavg"),
            Just("reverse"),
            Just("identity"),
            Just("shift"),
            Just("scale"),
            Just("warp"),
            Just("("),
            Just(")"),
            Just("["),
            Just("]"),
            Just(","),
            Just("-"),
            Just("+"),
            Just("."),
            Just("e"),
            Just("E"),
            Just("--"),
            Just("1.2.3"),
            Just("1e"),
            Just(".e-"),
        ]
        .prop_map(str::to_string),
        "[a-z_]{1,8}".prop_map(|s| s),
        (-1.0e9f64..1.0e9).prop_map(|n| format!("{n}")),
        (0u32..5).prop_map(|n| "[".repeat(n as usize)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    /// Arbitrary byte soup (lossily decoded) never panics the pipeline.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(0u8..=255, 0..120)) {
        let input = String::from_utf8_lossy(&bytes);
        check(&input);
    }

    /// Arbitrary printable character soup — denser in the lexer's
    /// accepted alphabet than raw bytes, so it reaches the parser more
    /// often.
    #[test]
    fn printable_soup_never_panics(input in "[a-zA-Z0-9_()., \\-]{0,100}") {
        check(&input);
    }

    /// Token-shaped streams: structurally plausible but arbitrarily
    /// scrambled queries exercise every parser production and recovery
    /// path.
    #[test]
    fn token_streams_never_panic(parts in prop::collection::vec(atom(), 0..40)) {
        check(&parts.join(" "));
        // Also without separating spaces: adjacency changes tokenization.
        check(&parts.concat());
    }

    /// Mutations of a valid query (truncations at every byte) stay
    /// structured.
    #[test]
    fn truncations_of_valid_queries_never_panic(
        cut_frac in 0.0f64..1.0,
        row in 0u64..100,
        eps in 0.0f64..10.0,
    ) {
        let q = format!(
            "EXPLAIN FIND SIMILAR TO ROW {row} IN stocks USING reverse THEN mavg(8) \
             ON BOTH EPSILON {eps} MEAN WITHIN 1.5 STD WITHIN 0.5 FORCE INDEX"
        );
        let cut = ((q.len() as f64) * cut_frac) as usize;
        if q.is_char_boundary(cut) {
            check(&q[..cut]);
        }
    }
}
