//! Graceful shutdown of the network service: in-flight work drains,
//! connected clients get one structured `shutdown` error frame and a
//! clean close (never a hang, a torn frame, or a panic), new
//! connections are refused, and the database comes back out of
//! [`Server::shutdown`] with every acked write applied.

mod common;

use common::*;
use similarity_queries::prelude::*;
use similarity_queries::query::QueryOutput;
use similarity_queries::server::proto::{Request, Response};
use similarity_queries::server::wire::{self, FrameKind};
use similarity_queries::server::ErrorCode;
use std::net::TcpStream;

fn spawn_server() -> (Server, std::net::SocketAddr) {
    let server = Server::bind(
        "127.0.0.1:0",
        indexed_db(walk_relation("walks", 11, 120, 32)),
    )
    .expect("server binds");
    let addr = server.local_addr();
    (server, addr)
}

#[test]
fn shutdown_hands_back_the_database_with_acked_writes_applied() {
    let (server, addr) = spawn_server();
    let mut client = Client::connect(addr).expect("client connects");
    let series = WalkGenerator::new(99).series(32);
    let report = client
        .insert("walks", vec![("LAST".into(), series.clone())])
        .expect("insert acked");
    assert_eq!(report.ids.len(), 1);
    client.goodbye().expect("orderly close");

    let db = server
        .shutdown()
        .expect("sole owner after every connection joined");
    // The acked write is in the returned database.
    let literal: Vec<String> = series.iter().map(|v| format!("{v:?}")).collect();
    let result = execute(
        &db,
        &format!("FIND 1 NEAREST TO [{}] IN walks", literal.join(", ")),
    )
    .expect("returned database answers queries");
    match result.output {
        QueryOutput::Hits(hits) => {
            assert_eq!(hits[0].name, "LAST");
            assert_eq!(hits[0].distance.to_bits(), 0f64.to_bits());
        }
        other => panic!("expected hits, got {other:?}"),
    }
}

#[test]
fn new_connections_are_refused_after_shutdown() {
    let (server, addr) = spawn_server();
    let mut client = Client::connect(addr).expect("client connects while serving");
    client.ping().expect("live server answers");
    client.goodbye().expect("orderly close");
    server.shutdown();
    assert!(
        Client::connect(addr).is_err(),
        "a drained server must refuse new connections"
    );
}

#[test]
fn mid_cursor_client_gets_shutdown_error_then_clean_eof() {
    let (server, addr) = spawn_server();
    let mut stream = TcpStream::connect(addr).expect("raw socket connects");
    let hello = Request::Hello {
        client: "shutdown-test".into(),
    };
    wire::write_frame(&mut stream, hello.kind(), &hello.encode()).expect("hello writes");
    let (kind, _) = wire::read_frame(&mut stream).expect("handshake answered");
    assert_eq!(kind, FrameKind::HelloOk);

    // Open a wide cursor with a tiny window, so the server suspends
    // holding the cursor open — the mid-stream state shutdown must
    // drain cleanly.
    let open = Request::OpenCursor {
        text: "FIND SIMILAR TO ROW 0 IN walks EPSILON 60.0".into(),
        window: 2,
    };
    wire::write_frame(&mut stream, open.kind(), &open.encode()).expect("open writes");
    let mut rows = 0usize;
    loop {
        let (kind, payload) = wire::read_frame(&mut stream).expect("cursor frames arrive");
        match Response::decode(kind, &payload).expect("cursor frames decode") {
            Response::Rows { hits } => rows += hits.len(),
            Response::CursorSuspended => break,
            other => panic!("expected rows/suspension, got {other:?}"),
        }
    }
    assert_eq!(rows, 2, "the window bounds the first burst");

    // Shut down while the cursor is suspended. The server owes this
    // connection exactly one shutdown error frame, then EOF.
    let joiner = std::thread::spawn(move || server.shutdown());
    let (kind, payload) = wire::read_frame(&mut stream).expect("the shutdown notice arrives");
    assert_eq!(kind, FrameKind::Error);
    match Response::decode(kind, &payload).expect("error frame decodes") {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Shutdown),
        other => panic!("expected the shutdown error, got {other:?}"),
    }
    match wire::read_frame(&mut stream) {
        Err(wire::WireError::Closed) => {}
        other => panic!("expected a clean close after the notice, got {other:?}"),
    }
    let db = joiner.join().expect("shutdown thread joins");
    assert!(db.is_some(), "database comes back after the drain");
}

#[test]
fn idle_connection_is_notified_and_requests_fail_with_is_shutdown() {
    let (server, addr) = spawn_server();
    let mut client = Client::connect(addr).expect("client connects");
    client.ping().expect("live server answers");

    let joiner = std::thread::spawn(move || server.shutdown());
    // The server notices the flag within its poll interval, sends the
    // notice and closes; whichever request observes it first must fail
    // with the *clean* shutdown signal or a clean close — never a torn
    // frame, checksum error, or hang.
    let mut outcome = None;
    for _ in 0..200 {
        match client.ping() {
            Ok(()) => std::thread::sleep(std::time::Duration::from_millis(5)),
            Err(e) => {
                outcome = Some(e);
                break;
            }
        }
    }
    match outcome.expect("a draining server stops answering pings") {
        e if e.is_shutdown() => {}
        ClientError::Wire(wire::WireError::Closed) => {}
        // The Fetch written after the server's FIN can surface as a
        // send-side I/O error (EPIPE/RST) — still a clean outcome.
        ClientError::Wire(wire::WireError::Io(_)) => {}
        other => panic!("expected a clean shutdown signal, got {other:?}"),
    }
    joiner.join().expect("shutdown thread joins");
}
