//! Crash-fuzz harness for the durable write path.
//!
//! The contract under test is the acknowledged-write guarantee: once
//! `Database::insert_into` returns `Ok`, that row's WAL record has been
//! written and synced, so the row survives a crash at **any** later
//! instant — including a crash in the middle of the very next append.
//!
//! The harness drives acknowledged-insert workloads against a database
//! whose WAL appends go through an injectable [`FailingStorage`] that
//! kills the process's write path after a seeded number of bytes (the
//! *kill point*). Appends before the kill point reach the (simulated)
//! disk; the append that crosses it is torn mid-record; everything after
//! it is lost. After the "crash" the surviving bytes are materialized to
//! the real directory and the database is reopened with
//! [`Database::open_durable`], which must:
//!
//! 1. recover **every acknowledged insert bit-for-bit** (names and raw
//!    f64 series compared by bit pattern), and
//! 2. answer every query form — range, kNN, join, prepared statements and
//!    streaming cursors, serially and at 4 threads, sharded and not —
//!    **bitwise identically** to an in-memory oracle built from exactly
//!    the acknowledged prefix of the workload.
//!
//! Kill points are seeded from `SIMQ_CRASH_SEED` (CI runs a fixed seed
//! matrix; the default seed keeps local runs deterministic) and include
//! the adversarial offsets by construction: 0, 1, each record boundary,
//! one byte either side of a boundary, and a spread of mid-record tears.
//! Two configurations × ≥100 kill points each ⇒ ≥200 kill points per run.

mod common;

use common::assert_outputs_bitwise_equal;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use similarity_queries::prelude::*;
use similarity_queries::query::execute;
use similarity_queries::storage::wal::encode_record;
use similarity_queries::storage::{FailingStorage, WalRecord};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const SERIES_LEN: usize = 16;
const BASE_ROWS: usize = 24;
const WORKLOAD_ROWS: usize = 20;
const KILL_POINTS_PER_CONFIG: usize = 100;

/// Base seed for the kill-point matrix. CI runs this test several times
/// with different fixed values; the default keeps plain `cargo test`
/// deterministic.
fn base_seed() -> u64 {
    std::env::var("SIMQ_CRASH_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0xC0FF_EE00)
}

/// A unique empty directory for one simulated crash run.
fn unique_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "simq-crash-fuzz-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed),
    ));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    dir
}

/// The deterministic insert stream every configuration replays.
fn workload() -> Vec<(String, Vec<f64>)> {
    let mut gen = WalkGenerator::new(9001);
    (0..WORKLOAD_ROWS)
        .map(|i| (format!("I{i:03}"), gen.series(SERIES_LEN)))
        .collect()
}

/// A fresh in-memory database with the seeded base relation, indexed,
/// partitioned into `shards` shards (1 = single R*-tree). No WAL.
fn fresh_db(shards: usize) -> Database {
    let mut gen = WalkGenerator::new(7);
    let mut rel = SeriesRelation::new("r", SERIES_LEN, FeatureScheme::paper_default());
    for i in 0..BASE_ROWS {
        rel.insert(format!("S{i:04}"), gen.series(SERIES_LEN))
            .unwrap();
    }
    let mut db = Database::new();
    db.add_relation_indexed(rel);
    if shards > 1 {
        db.shard_relation("r", shards).unwrap();
    }
    db
}

/// The WAL byte offsets worth killing at: the deterministic adversarial
/// set (start, every record boundary ± 1 byte, mid-header tears) plus
/// seeded uniform offsets up to `KILL_POINTS_PER_CONFIG` total.
fn kill_points(seed: u64) -> Vec<u64> {
    // Record lengths are data-independent of the assigned ids, so a
    // dummy id yields the exact on-disk boundaries.
    let mut boundaries = vec![0u64];
    for (name, series) in workload() {
        let len = encode_record(&WalRecord {
            id: 0,
            name,
            series,
        })
        .len() as u64;
        boundaries.push(boundaries.last().unwrap() + len);
    }
    let total = *boundaries.last().unwrap();
    let mut points: Vec<u64> = Vec::new();
    for b in &boundaries {
        points.push(*b);
        points.push(b + 1);
        points.push(b.saturating_sub(1));
        points.push(b + 6); // inside the length/checksum header
    }
    let mut rng = StdRng::seed_from_u64(seed);
    while points.len() < KILL_POINTS_PER_CONFIG {
        points.push(rng.gen_range(0..=total));
    }
    points.truncate(KILL_POINTS_PER_CONFIG.max(points.len()));
    points
}

/// Runs the workload against `db` until the first rejected insert (the
/// simulated crash) and returns the acknowledged prefix.
fn run_until_crash(db: &mut Database) -> Vec<(u64, String, Vec<f64>)> {
    let mut acked = Vec::new();
    for (name, series) in workload() {
        match db.insert_into("r", &name, series.clone()) {
            Ok(report) => acked.push((report.id, name, series)),
            Err(_) => break,
        }
    }
    acked
}

/// The query battery compared bitwise between the reopened database and
/// the oracle. Covers range (raw and transformed), kNN, and an index
/// join; `newest` pins a query at the most recently inserted row when
/// the crash acknowledged at least one.
fn query_battery(newest: Option<&str>) -> Vec<String> {
    let mut queries = vec![
        "FIND SIMILAR TO ROW 0 IN r EPSILON 1.5".to_string(),
        "FIND SIMILAR TO ROW 3 IN r USING mavg(3) ON BOTH EPSILON 2.0".to_string(),
        "FIND 5 NEAREST TO ROW 7 IN r".to_string(),
        "FIND PAIRS IN r EPSILON 1.0 METHOD d".to_string(),
    ];
    if let Some(name) = newest {
        queries.push(format!("FIND 3 NEAREST TO NAME {name} IN r"));
    }
    queries
}

/// Asserts `reopened` and `oracle` agree bitwise on the whole battery,
/// serially and at 4 threads, through plain execution, prepared
/// statements and drained cursors.
fn assert_query_equivalence(reopened: &mut Database, oracle: &mut Database, what: &str) {
    let newest_name;
    let newest = {
        let stored = oracle.relation("r").unwrap();
        let max = stored.rows().map(|r| r.id).max().unwrap();
        newest_name = stored.rows().find(|r| r.id == max).unwrap().name.clone();
        Some(newest_name.as_str())
    };
    for threads in [Parallelism::Serial, Parallelism::Fixed(4)] {
        reopened.set_parallelism(threads);
        oracle.set_parallelism(threads);
        for query in query_battery(newest) {
            let got = execute(reopened, &query).unwrap();
            let want = execute(oracle, &query).unwrap();
            assert_outputs_bitwise_equal(&got, &want, &format!("{what}: {query} @ {threads}"));
        }
        // Prepared-statement and cursor paths over the same session pair.
        let got_session = Session::new(&*reopened);
        let want_session = Session::new(&*oracle);
        let prepared_got = got_session.prepare("FIND ? NEAREST TO ROW 2 IN r").unwrap();
        let prepared_want = want_session
            .prepare("FIND ? NEAREST TO ROW 2 IN r")
            .unwrap();
        let bound_got = prepared_got.bind(&[Value::Number(4.0)]).unwrap();
        let bound_want = prepared_want.bind(&[Value::Number(4.0)]).unwrap();
        assert_outputs_bitwise_equal(
            &got_session.execute(&bound_got).unwrap(),
            &want_session.execute(&bound_want).unwrap(),
            &format!("{what}: prepared kNN @ {threads}"),
        );
        let cursor_query = "FIND SIMILAR TO ROW 1 IN r EPSILON 2.5";
        let got_hits = got_session
            .cursor_text(cursor_query)
            .unwrap()
            .drain_sorted();
        let want_hits = want_session
            .cursor_text(cursor_query)
            .unwrap()
            .drain_sorted();
        assert_eq!(
            got_hits.len(),
            want_hits.len(),
            "{what}: cursor @ {threads}"
        );
        for (h, g) in got_hits.iter().zip(&want_hits) {
            assert_eq!(h.id, g.id, "{what}: cursor @ {threads}");
            assert_eq!(
                h.distance.to_bits(),
                g.distance.to_bits(),
                "{what}: cursor @ {threads}"
            );
        }
    }
}

/// One simulated crash: run the workload with the write path killed after
/// `kill_after` WAL bytes, materialize the surviving bytes, reopen, and
/// check both halves of the contract.
fn crash_at(shards: usize, kill_after: u64, what: &str) {
    let dir = unique_dir(&format!("s{shards}"));
    let mut db = fresh_db(shards);
    let sink = FailingStorage::new(kill_after);
    db.attach_wal_with_sink(&dir, sink.clone()).unwrap();

    let acked = run_until_crash(&mut db);
    // The workload only stops early by exhausting the byte budget.
    assert!(
        acked.len() == WORKLOAD_ROWS || sink.crashed(),
        "{what}: workload stopped without a crash"
    );
    drop(db); // the process dies: in-memory state is gone

    // Whatever the torn write left behind becomes the real directory.
    sink.materialize().unwrap();
    let (reopened, replay) = Database::open_durable(&dir).unwrap();
    let mut reopened = reopened;

    // Half 1: every acknowledged insert survived, bit-for-bit.
    let stored = reopened.relation("r").expect("relation survives");
    assert_eq!(
        stored.row_count(),
        BASE_ROWS + acked.len(),
        "{what}: row count after reopen (replay {replay:?})"
    );
    for (id, name, series) in &acked {
        let row = stored
            .rows()
            .find(|r| r.id == *id)
            .unwrap_or_else(|| panic!("{what}: acknowledged id {id} lost"));
        assert_eq!(&row.name, name, "{what}: name of id {id}");
        assert_eq!(row.raw.len(), series.len(), "{what}: len of id {id}");
        for (a, b) in row.raw.iter().zip(series) {
            assert_eq!(a.to_bits(), b.to_bits(), "{what}: bits of id {id}");
        }
    }

    // Half 2: bitwise query equivalence against the acknowledged oracle.
    let mut oracle = fresh_db(shards);
    for (id, name, series) in &acked {
        let report = oracle.insert_into("r", name, series.clone()).unwrap();
        assert_eq!(report.id, *id, "{what}: oracle id assignment");
    }
    assert_query_equivalence(&mut reopened, &mut oracle, what);

    std::fs::remove_dir_all(&dir).ok();
}

/// ≥100 seeded kill points against the single-tree configuration.
#[test]
fn crash_fuzz_single() {
    let seed = base_seed();
    for (i, kill_after) in kill_points(seed).into_iter().enumerate() {
        crash_at(
            1,
            kill_after,
            &format!("single[{i}] kill@{kill_after} seed {seed:#x}"),
        );
    }
}

/// ≥100 seeded kill points against the 4-shard configuration (routing:
/// each record must replay into the shard that owns its id).
#[test]
fn crash_fuzz_sharded() {
    let seed = base_seed().wrapping_add(1);
    for (i, kill_after) in kill_points(seed).into_iter().enumerate() {
        crash_at(
            4,
            kill_after,
            &format!("sharded[{i}] kill@{kill_after} seed {seed:#x}"),
        );
    }
}

/// A kill budget beyond the workload's total bytes never trips: all
/// inserts acknowledge, nothing is torn, and reopen replays them all.
#[test]
fn no_crash_when_budget_exceeds_workload() {
    crash_at(1, u64::MAX, "unbounded");
    crash_at(4, u64::MAX, "unbounded sharded");
}
