//! Crash-fuzz harness for the durable write path.
//!
//! The contract under test is the acknowledged-write guarantee: once
//! `Database::insert_into` returns `Ok`, that row's WAL record has been
//! written and synced, so the row survives a crash at **any** later
//! instant — including a crash in the middle of the very next append.
//!
//! The harness drives acknowledged-insert workloads against a database
//! whose WAL appends go through an injectable [`FailingStorage`] that
//! kills the process's write path after a seeded number of bytes (the
//! *kill point*). Appends before the kill point reach the (simulated)
//! disk; the append that crosses it is torn mid-record; everything after
//! it is lost. After the "crash" the surviving bytes are materialized to
//! the real directory and the database is reopened with
//! [`Database::open_durable`], which must:
//!
//! 1. recover **every acknowledged insert bit-for-bit** (names and raw
//!    f64 series compared by bit pattern), and
//! 2. answer every query form — range, kNN, join, prepared statements and
//!    streaming cursors, serially and at 4 threads, sharded and not —
//!    **bitwise identically** to an in-memory oracle built from exactly
//!    the acknowledged prefix of the workload.
//!
//! Kill points are seeded from `SIMQ_CRASH_SEED` (CI runs a fixed seed
//! matrix; the default seed keeps local runs deterministic) and include
//! the adversarial offsets by construction: 0, 1, each record boundary,
//! one byte either side of a boundary, and a spread of mid-record tears.
//! Two configurations × ≥100 kill points each ⇒ ≥200 kill points per run.

mod common;

use common::assert_outputs_bitwise_equal;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use similarity_queries::prelude::*;
use similarity_queries::query::execute;
use similarity_queries::storage::wal::encode_record;
use similarity_queries::storage::{FailingStorage, WalRecord};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const SERIES_LEN: usize = 16;
const BASE_ROWS: usize = 24;
const WORKLOAD_ROWS: usize = 20;
const KILL_POINTS_PER_CONFIG: usize = 100;

/// Base seed for the kill-point matrix. CI runs this test several times
/// with different fixed values; the default keeps plain `cargo test`
/// deterministic.
fn base_seed() -> u64 {
    std::env::var("SIMQ_CRASH_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0xC0FF_EE00)
}

/// A unique empty directory for one simulated crash run.
fn unique_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "simq-crash-fuzz-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed),
    ));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    dir
}

/// The deterministic insert stream every configuration replays.
fn workload() -> Vec<(String, Vec<f64>)> {
    let mut gen = WalkGenerator::new(9001);
    (0..WORKLOAD_ROWS)
        .map(|i| (format!("I{i:03}"), gen.series(SERIES_LEN)))
        .collect()
}

/// A fresh in-memory database with the seeded base relation, indexed,
/// partitioned into `shards` shards (1 = single R*-tree). No WAL.
fn fresh_db(shards: usize) -> Database {
    let mut gen = WalkGenerator::new(7);
    let mut rel = SeriesRelation::new("r", SERIES_LEN, FeatureScheme::paper_default());
    for i in 0..BASE_ROWS {
        rel.insert(format!("S{i:04}"), gen.series(SERIES_LEN))
            .unwrap();
    }
    let mut db = Database::new();
    db.add_relation_indexed(rel);
    if shards > 1 {
        db.shard_relation("r", shards).unwrap();
    }
    db
}

/// The WAL byte offsets worth killing at: the deterministic adversarial
/// set (start, every record boundary ± 1 byte, mid-header tears) plus
/// seeded uniform offsets up to `KILL_POINTS_PER_CONFIG` total.
fn kill_points(seed: u64) -> Vec<u64> {
    // Record lengths are data-independent of the assigned ids, so a
    // dummy id yields the exact on-disk boundaries.
    let mut boundaries = vec![0u64];
    for (name, series) in workload() {
        let len = encode_record(&WalRecord {
            id: 0,
            name,
            series,
        })
        .len() as u64;
        boundaries.push(boundaries.last().unwrap() + len);
    }
    let total = *boundaries.last().unwrap();
    let mut points: Vec<u64> = Vec::new();
    for b in &boundaries {
        points.push(*b);
        points.push(b + 1);
        points.push(b.saturating_sub(1));
        points.push(b + 6); // inside the length/checksum header
    }
    let mut rng = StdRng::seed_from_u64(seed);
    while points.len() < KILL_POINTS_PER_CONFIG {
        points.push(rng.gen_range(0..=total));
    }
    points.truncate(KILL_POINTS_PER_CONFIG.max(points.len()));
    points
}

/// Runs the workload against `db` until the first rejected insert (the
/// simulated crash) and returns the acknowledged prefix.
fn run_until_crash(db: &mut Database) -> Vec<(u64, String, Vec<f64>)> {
    let mut acked = Vec::new();
    for (name, series) in workload() {
        match db.insert_into("r", &name, series.clone()) {
            Ok(report) => acked.push((report.id, name, series)),
            Err(_) => break,
        }
    }
    acked
}

/// The query battery compared bitwise between the reopened database and
/// the oracle. Covers range (raw and transformed), kNN, and an index
/// join; `newest` pins a query at the most recently inserted row when
/// the crash acknowledged at least one.
fn query_battery(newest: Option<&str>) -> Vec<String> {
    let mut queries = vec![
        "FIND SIMILAR TO ROW 0 IN r EPSILON 1.5".to_string(),
        "FIND SIMILAR TO ROW 3 IN r USING mavg(3) ON BOTH EPSILON 2.0".to_string(),
        "FIND 5 NEAREST TO ROW 7 IN r".to_string(),
        "FIND PAIRS IN r EPSILON 1.0 METHOD d".to_string(),
    ];
    if let Some(name) = newest {
        queries.push(format!("FIND 3 NEAREST TO NAME {name} IN r"));
    }
    queries
}

/// Asserts `reopened` and `oracle` agree bitwise on the whole battery,
/// serially and at 4 threads, through plain execution, prepared
/// statements and drained cursors.
fn assert_query_equivalence(reopened: &mut Database, oracle: &mut Database, what: &str) {
    let newest_name;
    let newest = {
        let stored = oracle.relation("r").unwrap();
        let max = stored.rows().map(|r| r.id).max().unwrap();
        newest_name = stored.rows().find(|r| r.id == max).unwrap().name.clone();
        Some(newest_name.as_str())
    };
    for threads in [Parallelism::Serial, Parallelism::Fixed(4)] {
        reopened.set_parallelism(threads);
        oracle.set_parallelism(threads);
        for query in query_battery(newest) {
            let got = execute(reopened, &query).unwrap();
            let want = execute(oracle, &query).unwrap();
            assert_outputs_bitwise_equal(&got, &want, &format!("{what}: {query} @ {threads}"));
        }
        // Prepared-statement and cursor paths over the same session pair.
        let got_session = Session::new(&*reopened);
        let want_session = Session::new(&*oracle);
        let prepared_got = got_session.prepare("FIND ? NEAREST TO ROW 2 IN r").unwrap();
        let prepared_want = want_session
            .prepare("FIND ? NEAREST TO ROW 2 IN r")
            .unwrap();
        let bound_got = prepared_got.bind(&[Value::Number(4.0)]).unwrap();
        let bound_want = prepared_want.bind(&[Value::Number(4.0)]).unwrap();
        assert_outputs_bitwise_equal(
            &got_session.execute(&bound_got).unwrap(),
            &want_session.execute(&bound_want).unwrap(),
            &format!("{what}: prepared kNN @ {threads}"),
        );
        let cursor_query = "FIND SIMILAR TO ROW 1 IN r EPSILON 2.5";
        let got_hits = got_session
            .cursor_text(cursor_query)
            .unwrap()
            .drain_sorted();
        let want_hits = want_session
            .cursor_text(cursor_query)
            .unwrap()
            .drain_sorted();
        assert_eq!(
            got_hits.len(),
            want_hits.len(),
            "{what}: cursor @ {threads}"
        );
        for (h, g) in got_hits.iter().zip(&want_hits) {
            assert_eq!(h.id, g.id, "{what}: cursor @ {threads}");
            assert_eq!(
                h.distance.to_bits(),
                g.distance.to_bits(),
                "{what}: cursor @ {threads}"
            );
        }
    }
}

/// One simulated crash: run the workload with the write path killed after
/// `kill_after` WAL bytes, materialize the surviving bytes, reopen, and
/// check both halves of the contract.
fn crash_at(shards: usize, kill_after: u64, what: &str) {
    let dir = unique_dir(&format!("s{shards}"));
    let mut db = fresh_db(shards);
    let sink = FailingStorage::new(kill_after);
    db.attach_wal_with_sink(&dir, sink.clone()).unwrap();

    let acked = run_until_crash(&mut db);
    // The workload only stops early by exhausting the byte budget.
    assert!(
        acked.len() == WORKLOAD_ROWS || sink.crashed(),
        "{what}: workload stopped without a crash"
    );
    drop(db); // the process dies: in-memory state is gone

    // Whatever the torn write left behind becomes the real directory.
    sink.materialize().unwrap();
    let (reopened, replay) = Database::open_durable(&dir).unwrap();
    let mut reopened = reopened;

    // Half 1: every acknowledged insert survived, bit-for-bit.
    let stored = reopened.relation("r").expect("relation survives");
    assert_eq!(
        stored.row_count(),
        BASE_ROWS + acked.len(),
        "{what}: row count after reopen (replay {replay:?})"
    );
    for (id, name, series) in &acked {
        let row = stored
            .rows()
            .find(|r| r.id == *id)
            .unwrap_or_else(|| panic!("{what}: acknowledged id {id} lost"));
        assert_eq!(&row.name, name, "{what}: name of id {id}");
        assert_eq!(row.raw.len(), series.len(), "{what}: len of id {id}");
        for (a, b) in row.raw.iter().zip(series) {
            assert_eq!(a.to_bits(), b.to_bits(), "{what}: bits of id {id}");
        }
    }

    // Half 2: bitwise query equivalence against the acknowledged oracle.
    let mut oracle = fresh_db(shards);
    for (id, name, series) in &acked {
        let report = oracle.insert_into("r", name, series.clone()).unwrap();
        assert_eq!(report.id, *id, "{what}: oracle id assignment");
    }
    assert_query_equivalence(&mut reopened, &mut oracle, what);

    std::fs::remove_dir_all(&dir).ok();
}

/// ≥100 seeded kill points against the single-tree configuration.
#[test]
fn crash_fuzz_single() {
    let seed = base_seed();
    for (i, kill_after) in kill_points(seed).into_iter().enumerate() {
        crash_at(
            1,
            kill_after,
            &format!("single[{i}] kill@{kill_after} seed {seed:#x}"),
        );
    }
}

/// ≥100 seeded kill points against the 4-shard configuration (routing:
/// each record must replay into the shard that owns its id).
#[test]
fn crash_fuzz_sharded() {
    let seed = base_seed().wrapping_add(1);
    for (i, kill_after) in kill_points(seed).into_iter().enumerate() {
        crash_at(
            4,
            kill_after,
            &format!("sharded[{i}] kill@{kill_after} seed {seed:#x}"),
        );
    }
}

/// A kill budget beyond the workload's total bytes never trips: all
/// inserts acknowledge, nothing is torn, and reopen replays them all.
#[test]
fn no_crash_when_budget_exceeds_workload() {
    crash_at(1, u64::MAX, "unbounded");
    crash_at(4, u64::MAX, "unbounded sharded");
}

// ---------------------------------------------------------------------------
// Concurrent writers: mid-group kill points
// ---------------------------------------------------------------------------

/// The worker-thread count the concurrent crash runs use (CI sets
/// `SIMQ_THREADS=4`; so does the default).
fn crash_threads() -> usize {
    std::env::var("SIMQ_THREADS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(4)
}

/// One simulated crash under concurrent per-shard writers: the whole
/// workload goes through `Database::insert_batch` (one WAL group append
/// per shard, writers racing on distinct shards) with the shared byte
/// budget killed after `kill_after` bytes. The contract is two-sided:
///
/// 1. every row the batch **acknowledged** survives reopen bit-for-bit;
/// 2. rows of a torn (unacknowledged) group are atomically
///    absent-or-present per shard according to the WAL prefix property —
///    the recovered subset of each shard's group is exactly a prefix of
///    that shard's records in id order, never a gap.
fn crash_batch_at(shards: usize, kill_after: u64, what: &str) {
    let dir = unique_dir(&format!("batch-s{shards}"));
    let mut db = fresh_db(shards);
    db.set_parallelism(Parallelism::Fixed(crash_threads()));
    let sink = FailingStorage::new(kill_after);
    db.attach_wal_with_sink(&dir, sink.clone()).unwrap();

    let rows = workload();
    let acked: Vec<(u64, usize)> = match db.insert_batch("r", rows.clone()) {
        Ok(report) => report.acked.iter().map(|&(idx, r)| (r.id, idx)).collect(),
        Err(_) => Vec::new(), // every shard's group append died
    };
    drop(db);
    sink.materialize().unwrap();
    let (reopened, _replay) = Database::open_durable(&dir).unwrap();
    let stored = reopened.relation("r").expect("relation survives");

    // Batch ids are assigned in input order from the base relation's
    // next_id, so workload row `idx` owns id BASE_ROWS + idx. An oracle
    // insert loop pins the shard routing.
    let mut oracle = fresh_db(shards);
    let mut shard_sequences: Vec<Vec<u64>> = vec![Vec::new(); shards];
    for (name, series) in &rows {
        let report = oracle.insert_into("r", name, series.clone()).unwrap();
        shard_sequences[report.shard].push(report.id);
    }

    // Half 1: acknowledged rows are present, bit-for-bit.
    for &(id, idx) in &acked {
        assert_eq!(id, (BASE_ROWS + idx) as u64, "{what}: id assignment");
        let row = stored
            .row(id)
            .unwrap_or_else(|| panic!("{what}: acknowledged id {id} lost"));
        let (name, series) = &rows[idx];
        assert_eq!(&row.name, name, "{what}: name of id {id}");
        for (a, b) in row.raw.iter().zip(series) {
            assert_eq!(a.to_bits(), b.to_bits(), "{what}: bits of id {id}");
        }
    }

    // Half 2: per shard, the recovered workload rows form a prefix of
    // that shard's group in id order (an acked shard recovers all of
    // them; a torn shard recovers exactly the records before the tear).
    let acked_ids: std::collections::BTreeSet<u64> = acked.iter().map(|&(id, _)| id).collect();
    for (shard, sequence) in shard_sequences.iter().enumerate() {
        let recovered: Vec<bool> = sequence
            .iter()
            .map(|&id| stored.row(id).is_some())
            .collect();
        let prefix_len = recovered.iter().take_while(|&&p| p).count();
        assert!(
            recovered[prefix_len..].iter().all(|&p| !p),
            "{what}: shard {shard} recovered a gapped subset {recovered:?} of {sequence:?}"
        );
        // Unacknowledged survivors are legal (the tear hit after their
        // bytes); acknowledged ones are mandatory, so the prefix covers
        // every acked id of the shard.
        for &id in sequence {
            if acked_ids.contains(&id) {
                assert!(
                    stored.row(id).is_some(),
                    "{what}: shard {shard} lost acked id {id}"
                );
            }
        }
        // Whatever survived must carry the workload's exact bits.
        for &id in &sequence[..prefix_len] {
            let row = stored.row(id).unwrap();
            let (name, series) = &rows[(id - BASE_ROWS as u64) as usize];
            assert_eq!(&row.name, name, "{what}: torn-group name of id {id}");
            for (a, b) in row.raw.iter().zip(series) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{what}: torn-group bits of id {id}"
                );
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Seeded mid-group kill points against the 4-shard configuration under
/// concurrent per-shard writers, plus the single-tree one-group case.
#[test]
fn crash_fuzz_concurrent_batch() {
    let seed = base_seed().wrapping_add(2);
    for (i, kill_after) in kill_points(seed).into_iter().take(60).enumerate() {
        crash_batch_at(
            4,
            kill_after,
            &format!("batch-sharded[{i}] kill@{kill_after} seed {seed:#x}"),
        );
    }
    let seed = base_seed().wrapping_add(3);
    for (i, kill_after) in kill_points(seed).into_iter().take(30).enumerate() {
        crash_batch_at(
            1,
            kill_after,
            &format!("batch-single[{i}] kill@{kill_after} seed {seed:#x}"),
        );
    }
}

// ---------------------------------------------------------------------------
// Checkpoint commit point: crashes between rename and directory sync
// ---------------------------------------------------------------------------

/// Reads every file of a durable directory into memory.
fn dir_files(dir: &std::path::Path) -> std::collections::BTreeMap<String, Vec<u8>> {
    let mut files = std::collections::BTreeMap::new();
    for entry in std::fs::read_dir(dir).unwrap() {
        let entry = entry.unwrap();
        if entry.file_type().unwrap().is_file() {
            files.insert(
                entry.file_name().to_string_lossy().into_owned(),
                std::fs::read(entry.path()).unwrap(),
            );
        }
    }
    files
}

/// Materializes a simulated post-crash directory state.
fn write_dir(dir: &std::path::Path, files: &std::collections::BTreeMap<String, Vec<u8>>) {
    std::fs::create_dir_all(dir).unwrap();
    for (name, bytes) in files {
        std::fs::write(dir.join(name), bytes).unwrap();
    }
}

/// Crashes at the checkpoint's commit point: the manifest rename is the
/// atomic switch, and the directory fsync after it is what makes the
/// switch durable. A crash on either side of that instant must leave a
/// directory that reopens to a state containing **every acknowledged
/// insert** — before the rename becomes durable the old manifest still
/// governs (old checkpoint + intact WAL tails), after it the new one does
/// (new checkpoint; stale files are ignorable garbage).
#[test]
fn checkpoint_commit_point_crash_recovers_every_acked_insert() {
    for shards in [1usize, 4] {
        let dir = unique_dir(&format!("commit-point-s{shards}"));
        let mut db = fresh_db(shards);
        db.attach_wal(&dir).unwrap();
        let mut acked = Vec::new();
        for (name, series) in workload() {
            let report = db.insert_into("r", &name, series.clone()).unwrap();
            acked.push((report.id, name, series));
        }
        let before = dir_files(&dir); // old manifest + old snaps + WAL tails
        db.checkpoint().unwrap();
        let after = dir_files(&dir); // new manifest + new snaps, tails absorbed
        drop(db);
        assert_ne!(
            before.get("MANIFEST"),
            after.get("MANIFEST"),
            "checkpoint must swap the manifest"
        );

        // Crash A — new checkpoint files synced, manifest rename NOT yet
        // durable: the directory shows every new file but the old
        // manifest. (This is exactly the window the directory fsync in
        // `pages::write_atomic` closes.)
        let mut pre_rename = before.clone();
        for (name, bytes) in &after {
            if name != "MANIFEST" {
                pre_rename
                    .entry(name.clone())
                    .or_insert_with(|| bytes.clone());
            }
        }
        // Crash B — rename durable, stale-file deletion NOT yet durable:
        // old epoch files and absorbed WAL tails reappear next to the new
        // manifest.
        let mut post_rename = before.clone();
        for (name, bytes) in &after {
            post_rename.insert(name.clone(), bytes.clone());
        }

        for (tag, files) in [("pre-rename", &pre_rename), ("post-rename", &post_rename)] {
            let what = format!("commit-point {tag} (shards {shards})");
            let crash_dir = unique_dir(&format!("commit-point-{tag}-s{shards}"));
            write_dir(&crash_dir, files);
            let (reopened, _replay) = Database::open_durable(&crash_dir)
                .unwrap_or_else(|e| panic!("{what}: reopen failed: {e}"));
            let stored = reopened.relation("r").expect("relation survives");
            assert_eq!(
                stored.row_count(),
                BASE_ROWS + acked.len(),
                "{what}: row count"
            );
            for (id, name, series) in &acked {
                let row = stored
                    .row(*id)
                    .unwrap_or_else(|| panic!("{what}: acked id {id} lost"));
                assert_eq!(&row.name, name, "{what}: name of id {id}");
                for (a, b) in row.raw.iter().zip(series) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{what}: bits of id {id}");
                }
            }
            std::fs::remove_dir_all(&crash_dir).ok();
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

// ---------------------------------------------------------------------------
// Torn-tail repair: a crash between the repair and its sync
// ---------------------------------------------------------------------------

/// The WAL tail files of a durable directory, sorted by name.
fn wal_paths(dir: &std::path::Path) -> Vec<PathBuf> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "wal"))
        .collect();
    paths.sort();
    paths
}

/// Repairing a torn WAL tail truncates the garbage — and that truncation
/// is itself synced (`sync_all`: truncation is *metadata*) before replay
/// reports success. A crash between the repair and its sync resurfaces
/// the torn bytes; the next open must repair them again to the identical
/// state, for any seeded tear.
#[test]
fn torn_tail_repair_survives_a_crash_before_the_truncation_syncs() {
    let seed = base_seed().wrapping_add(4);
    let mut rng = StdRng::seed_from_u64(seed);
    for round in 0..8 {
        let dir = unique_dir(&format!("repair-{round}"));
        let mut db = fresh_db(1);
        db.attach_wal(&dir).unwrap();
        let mut acked = Vec::new();
        for (name, series) in workload().into_iter().take(6) {
            let report = db.insert_into("r", &name, series.clone()).unwrap();
            acked.push((report.id, name, series));
        }
        drop(db);

        // Tear the tail: a prefix of a valid record plus garbage.
        let wal = wal_paths(&dir)
            .into_iter()
            .next()
            .expect("one WAL tail exists");
        let clean = std::fs::read(&wal).unwrap();
        let mut torn_record = encode_record(&WalRecord {
            id: 9999,
            name: "torn".into(),
            series: vec![1.0; SERIES_LEN],
        });
        let keep = rng.gen_range(1..torn_record.len());
        torn_record.truncate(keep);
        torn_record.extend_from_slice(&[0xAB; 3]);
        let mut torn = clean.clone();
        torn.extend_from_slice(&torn_record);
        std::fs::write(&wal, &torn).unwrap();

        let verify = |what: &str| {
            let (reopened, replay) = Database::open_durable(&dir).unwrap();
            assert!(
                replay.wal_files_repaired >= 1,
                "{what}: tear not detected (round {round}, keep {keep})"
            );
            let stored = reopened.relation("r").unwrap();
            assert_eq!(
                stored.row_count(),
                BASE_ROWS + acked.len(),
                "{what}: row count (round {round})"
            );
            for (id, name, series) in &acked {
                let row = stored.row(*id).unwrap();
                assert_eq!(&row.name, name, "{what}: name of id {id}");
                for (a, b) in row.raw.iter().zip(series) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{what}: bits of id {id}");
                }
            }
        };
        // First open repairs the tear and truncates the tail…
        verify("first repair");
        assert_eq!(
            std::fs::read(&wal).unwrap(),
            clean,
            "repair truncates to the valid prefix (round {round})"
        );
        // …simulate the crash where that truncation never became durable
        // (the bug `truncate_to`'s sync_all closes: set_len is metadata):
        // the torn bytes reappear, and the next open repairs identically.
        std::fs::write(&wal, &torn).unwrap();
        verify("repair after lost truncation");
        assert_eq!(
            std::fs::read(&wal).unwrap(),
            clean,
            "second repair reaches the identical state (round {round})"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
