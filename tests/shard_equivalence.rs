//! The sharding contract as executable properties.
//!
//! 1. **Bitwise equivalence**: every query form — range (identity and
//!    transformed, with MEAN/STD windows, forced to scan or index), kNN
//!    and all-pairs joins (scan and probe methods) — returns *identical*
//!    output over a sharded relation and its unsharded original: same
//!    ids, same names, same order, bitwise-equal distances. Pinned at 1
//!    and 4 threads, across shard counts.
//! 2. **Persistence**: a saved sharded database reopens with its shard
//!    layout and per-shard trees intact, and the reopened database
//!    answers every query identically.
//! 3. **Surface parity**: batches, prepared statements and streaming
//!    cursors over sharded relations reproduce unsharded answers, and
//!    per-shard work counters sum to the merged totals.

mod common;

use common::{assert_outputs_bitwise_equal, corpus, relation_with};
use proptest::prelude::*;
use similarity_queries::prelude::*;
use similarity_queries::query::StoredRelation;

/// The query forms the equivalence contract covers (row 0 always exists).
fn query_matrix() -> Vec<String> {
    vec![
        "FIND SIMILAR TO ROW 0 IN r EPSILON 3.0".into(),
        "FIND SIMILAR TO ROW 0 IN r EPSILON 25.0".into(),
        "FIND SIMILAR TO ROW 0 IN r USING mavg(5) ON BOTH EPSILON 2.0".into(),
        "FIND SIMILAR TO ROW 0 IN r EPSILON 4.0 MEAN WITHIN 2.0".into(),
        "FIND SIMILAR TO ROW 0 IN r EPSILON 3.0 FORCE SCAN".into(),
        "FIND 5 NEAREST TO ROW 0 IN r".into(),
        "FIND 5 NEAREST TO ROW 0 IN r USING mavg(5) ON BOTH".into(),
        "FIND 5 NEAREST TO ROW 0 IN r FORCE SCAN".into(),
        "FIND PAIRS IN r EPSILON 4.0 METHOD b".into(),
        "FIND PAIRS IN r USING mavg(5) EPSILON 3.0 METHOD d".into(),
    ]
}

/// An unsharded database and its sharded twin over the same corpus.
fn twin_dbs(series: &[Vec<f64>], shards: usize) -> (Database, Database) {
    let rel = relation_with(series, FeatureScheme::paper_default());
    let mut single = Database::new();
    single.add_relation_indexed(rel.clone());
    let mut sharded = Database::new();
    sharded.add_relation_sharded(rel, shards);
    (single, sharded)
}

fn assert_dbs_agree(single: &mut Database, sharded: &mut Database, label: &str) {
    for q in query_matrix() {
        for threads in [1usize, 4] {
            let p = if threads == 1 {
                Parallelism::Serial
            } else {
                Parallelism::Fixed(threads)
            };
            single.set_parallelism(p);
            sharded.set_parallelism(p);
            let a = execute(single, &q).expect("unsharded query runs");
            let b = execute(sharded, &q).expect("sharded query runs");
            assert_outputs_bitwise_equal(&a, &b, &format!("{label}: {q} (threads {threads})"));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Arbitrary corpora, shard counts and thread counts: sharded
    /// execution is bitwise identical to unsharded for every query form.
    #[test]
    fn sharded_results_equal_unsharded(
        seed in 0u64..10_000,
        rows in 8usize..80,
        shards in 2usize..6,
    ) {
        let series = corpus(seed, rows, 64);
        let (mut single, mut sharded) = twin_dbs(&series, shards);
        assert_dbs_agree(&mut single, &mut sharded, &format!("{shards} shards"));
    }

    /// Saving a sharded database and reopening it preserves the layout,
    /// the per-shard trees, and every query answer.
    #[test]
    fn sharded_snapshot_roundtrip_query_identical(
        seed in 0u64..10_000,
        rows in 8usize..50,
        shards in 2usize..5,
    ) {
        let series = corpus(seed, rows, 64);
        let (mut single, sharded) = twin_dbs(&series, shards);
        let dir = std::env::temp_dir().join("simq-shard-equivalence");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("db-{seed}-{rows}-{shards}.simq"));
        sharded.save_snapshot(&path).expect("snapshot saves");
        let mut reopened = Database::open_snapshot(&path).expect("snapshot reopens");
        std::fs::remove_file(&path).ok();
        // The layout survived.
        let stored = reopened.relation("r").expect("relation reopened");
        prop_assert_eq!(stored.shard_count(), shards);
        prop_assert_eq!(stored.row_count(), rows);
        assert_dbs_agree(&mut single, &mut reopened, "reopened sharded db");
    }
}

#[test]
fn shard_relation_reshards_and_merges_back() {
    let series = corpus(11, 60, 64);
    let rel = relation_with(&series, FeatureScheme::paper_default());
    let mut reference = Database::new();
    reference.add_relation_indexed(rel.clone());
    let mut db = Database::new();
    db.add_relation_indexed(rel);

    // 1 → 4 → 2 → 1 shards; answers never change.
    for shards in [4usize, 2, 1] {
        db.shard_relation("r", shards).expect("reshard succeeds");
        let stored = db.relation("r").expect("relation exists");
        assert_eq!(stored.shard_count(), shards);
        assert_eq!(stored.row_count(), 60);
        if shards > 1 {
            // The modulo layout balances shard sizes within one row.
            let counts = stored.shard_row_counts();
            let (min, max) = (*counts.iter().min().unwrap(), *counts.iter().max().unwrap());
            assert!(max - min <= 1, "unbalanced shards: {counts:?}");
        }
        assert_dbs_agree(&mut reference, &mut db, &format!("reshard to {shards}"));
    }

    // Unknown relations and zero shard counts are rejected.
    assert!(db.shard_relation("nope", 2).is_err());
    assert!(db.shard_relation("r", 0).is_err());
}

#[test]
fn sharded_execution_reports_per_shard_counters() {
    let series = corpus(3, 96, 64);
    let (_, mut db) = twin_dbs(&series, 4);
    db.set_parallelism(Parallelism::Fixed(4));

    // Index range: per-shard node visits sum to the merged total.
    let r = execute(&db, "FIND SIMILAR TO ROW 0 IN r EPSILON 6.0").unwrap();
    assert_eq!(r.plan.shards, 4);
    assert_eq!(r.stats.shards_touched, 4);
    assert_eq!(r.per_shard.len(), 4);
    let node_sum: u64 = r.per_shard.iter().map(|s| s.nodes_visited).sum();
    assert_eq!(node_sum, r.stats.nodes_visited);
    assert!(r.stats.nodes_visited > 0);

    // Scan fallback: per-shard rows sum to the relation size.
    let r = execute(&db, "FIND SIMILAR TO ROW 0 IN r EPSILON 6.0 FORCE SCAN").unwrap();
    assert_eq!(r.per_shard.len(), 4);
    let row_sum: u64 = r.per_shard.iter().map(|s| s.rows_scanned).sum();
    assert_eq!(row_sum, 96);

    // EXPLAIN surfaces the fan-out.
    let r = execute(&db, "EXPLAIN FIND SIMILAR TO ROW 0 IN r EPSILON 6.0").unwrap();
    let QueryOutput::Plan(text) = &r.output else {
        panic!("expected plan output");
    };
    assert!(text.contains("shards: 4"), "{text}");

    // Unsharded execution reports no shard counters.
    let series = corpus(3, 16, 64);
    let mut single = Database::new();
    single.add_relation_indexed(relation_with(&series, FeatureScheme::paper_default()));
    let r = execute(&single, "FIND SIMILAR TO ROW 0 IN r EPSILON 1.0").unwrap();
    assert_eq!(r.stats.shards_touched, 0);
    assert!(r.per_shard.is_empty());
}

#[test]
fn sharded_batches_equal_individual_execution() {
    let series = corpus(21, 80, 64);
    let (_, mut db) = twin_dbs(&series, 3);
    for threads in [1usize, 4] {
        db.set_parallelism(if threads == 1 {
            Parallelism::Serial
        } else {
            Parallelism::Fixed(threads)
        });
        let queries: Vec<String> = (0..6)
            .map(|i| format!("FIND SIMILAR TO ROW {i} IN r EPSILON {}", 1.0 + i as f64))
            .chain((0..3).map(|i| format!("FIND {} NEAREST TO ROW {i} IN r", 3 + i)))
            .chain((1..3).map(|i| format!("FIND SIMILAR TO ROW {i} IN r EPSILON 2 FORCE SCAN")))
            .collect();
        let texts: Vec<&str> = queries.iter().map(String::as_str).collect();
        let batch = execute_batch(&db, &texts);
        assert!(batch.stats.shared_groups >= 2, "groups formed over shards");
        for (i, q) in texts.iter().enumerate() {
            let individual = execute(&db, q).unwrap();
            let got = batch.results[i].as_ref().unwrap();
            assert_outputs_bitwise_equal(got, &individual, &format!("batch slot {i}: {q}"));
            // Grouped slots stamp the same shard fan-out as individual runs.
            assert_eq!(got.stats.shards_touched, 3, "batch slot {i}: {q}");
        }
        // Shared traversal over per-shard trees still beats one-at-a-time.
        assert!(
            batch.stats.merged.nodes_visited < batch.stats.per_query_total.nodes_visited,
            "merged {} < per-query {}",
            batch.stats.merged.nodes_visited,
            batch.stats.per_query_total.nodes_visited
        );
    }
}

#[test]
fn sharded_cursors_and_prepared_statements_match_materialized() {
    let series = corpus(33, 70, 64);
    let (single, sharded) = twin_dbs(&series, 4);
    let session = Session::new(&sharded);
    let reference = Session::new(&single);

    let p = session
        .prepare("FIND SIMILAR TO ROW ? IN r EPSILON ?")
        .unwrap();
    let q = reference
        .prepare("FIND SIMILAR TO ROW ? IN r EPSILON ?")
        .unwrap();
    for (row, eps) in [(0u64, 3.0), (5, 10.0), (12, 1.0)] {
        let bound = p.bind(&[Value::from(row), Value::from(eps)]).unwrap();
        let ref_bound = q.bind(&[Value::from(row), Value::from(eps)]).unwrap();
        let materialized = session.execute(&bound).unwrap();
        let expected = reference.execute(&ref_bound).unwrap();
        assert_outputs_bitwise_equal(
            &materialized,
            &expected,
            &format!("prepared row {row} eps {eps}"),
        );

        // A drained cursor reproduces the materialized output bitwise.
        let mut cursor = session.cursor(&bound).unwrap();
        let drained = cursor.drain_sorted();
        let QueryOutput::Hits(want) = &materialized.output else {
            panic!("expected hits");
        };
        assert_eq!(drained.len(), want.len());
        for (a, b) in drained.iter().zip(want) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.distance.to_bits(), b.distance.to_bits());
        }
    }

    // Partial consumption of a wide sharded cursor descends strictly less
    // of the forest than a full drain.
    let bound = p.bind(&[Value::from(0u64), Value::from(50.0)]).unwrap();
    let full = {
        let mut c = session.cursor(&bound).unwrap();
        let _ = c.drain_sorted();
        c.stats().nodes_visited
    };
    let mut partial = session.cursor(&bound).unwrap();
    assert!(partial.next().is_some());
    assert!(
        partial.stats().nodes_visited < full,
        "partial {} vs full {}",
        partial.stats().nodes_visited,
        full
    );
}

#[test]
fn inserts_into_sharded_relations_stay_queryable() {
    let series = corpus(8, 40, 64);
    let rel = relation_with(&series, FeatureScheme::paper_default());
    let mut db = Database::new();
    db.add_relation_sharded(rel, 4);

    // Insert through the catalog: the owning shard's tree is updated.
    let extra = corpus(99, 8, 64);
    {
        let stored = db.relation_mut("r").expect("relation exists");
        for (i, s) in extra.iter().enumerate() {
            let id = stored.insert(format!("X{i}"), s.clone()).unwrap();
            assert_eq!(id, 40 + i as u64);
        }
    }
    let stored = db.relation("r").unwrap();
    assert_eq!(stored.row_count(), 48);
    if let StoredRelation::Sharded { relation, indexes } = stored {
        for (shard, tree) in relation.shards().iter().zip(indexes) {
            assert_eq!(shard.len(), tree.len(), "tree tracks its shard");
        }
    } else {
        panic!("expected sharded relation");
    }

    // The inserted rows are found by index-served queries, identically to
    // an unsharded relation built the same way.
    let mut single = Database::new();
    let mut rel = relation_with(&series, FeatureScheme::paper_default());
    for (i, s) in extra.iter().enumerate() {
        rel.insert(format!("X{i}"), s.clone()).unwrap();
    }
    single.add_relation_indexed(rel);
    for q in [
        "FIND SIMILAR TO ROW 44 IN r EPSILON 8.0",
        "FIND 6 NEAREST TO ROW 44 IN r",
    ] {
        let a = execute(&single, q).unwrap();
        let b = execute(&db, q).unwrap();
        assert_outputs_bitwise_equal(&a, &b, q);
    }
}

/// Sharded relations under an all-linear (rectangular, no-stats) scheme —
/// the representation the paper's kNN MINDIST path exercises hardest.
#[test]
fn rectangular_scheme_sharded_equivalence() {
    let series = corpus(17, 64, 32);
    let scheme = FeatureScheme::new(3, Representation::Rectangular, false);
    let rel = relation_with(&series, scheme);
    let mut single = Database::new();
    single.add_relation_indexed(rel.clone());
    let mut sharded = Database::new();
    sharded.add_relation_sharded(rel, 4);
    for q in [
        "FIND SIMILAR TO ROW 0 IN r EPSILON 5.0",
        "FIND 7 NEAREST TO ROW 3 IN r",
        "FIND PAIRS IN r EPSILON 6.0 METHOD d",
    ] {
        for threads in [1usize, 4] {
            let p = if threads == 1 {
                Parallelism::Serial
            } else {
                Parallelism::Fixed(threads)
            };
            single.set_parallelism(p);
            sharded.set_parallelism(p);
            let a = execute(&single, q).unwrap();
            let b = execute(&sharded, q).unwrap();
            assert_outputs_bitwise_equal(&a, &b, &format!("{q} (threads {threads})"));
        }
    }
}

/// Regression: re-sharding a relation that has *pending incremental
/// inserts* routes every row — bulk-loaded and inserted alike — through
/// the incremental index build, preserving bitwise query equivalence.
/// (The old path rebuilt from the bulk loader and could disagree with
/// the maintained trees' insertion outcome.)
#[test]
fn reshard_after_pending_inserts_preserves_equivalence() {
    let series = corpus(23, 40, 32);
    let (mut single, mut sharded) = twin_dbs(&series[..30], 3);
    // Ten pending inserts against both twins' live trees.
    for (i, s) in series[30..].iter().enumerate() {
        single
            .insert_into("r", format!("S{}", 30 + i), s.clone())
            .unwrap();
        sharded
            .insert_into("r", format!("S{}", 30 + i), s.clone())
            .unwrap();
    }
    assert_dbs_agree(&mut single, &mut sharded, "pending inserts");

    // Re-shard with the inserts pending: 3 → 5 shards, then back to 1.
    sharded.shard_relation("r", 5).unwrap();
    assert_dbs_agree(
        &mut single,
        &mut sharded,
        "resharded 3→5 with pending inserts",
    );
    sharded.shard_relation("r", 1).unwrap();
    assert_dbs_agree(&mut single, &mut sharded, "unsharded with pending inserts");

    // And the resharded trees keep accepting incremental inserts.
    let mut gen = WalkGenerator::new(5);
    let probe = gen.series(32);
    single.insert_into("r", "P", probe.clone()).unwrap();
    sharded.insert_into("r", "P", probe).unwrap();
    assert_dbs_agree(&mut single, &mut sharded, "insert after reshard");
}

/// Regression: asking for the shard shape a relation already has is a
/// no-op — same layout, same tree bytes, and no generation bump (cached
/// plans and prepared statements stay valid).
#[test]
fn same_shape_reshard_is_a_noop() {
    let series = corpus(29, 24, 32);
    let (_, mut sharded) = twin_dbs(&series, 4);
    let generation = sharded.generation();
    sharded.shard_relation("r", 4).unwrap();
    assert_eq!(
        sharded.generation(),
        generation,
        "same-shape reshard must not invalidate plans"
    );
    let StoredRelation::Sharded { relation, .. } = sharded.relation("r").unwrap() else {
        panic!("still sharded");
    };
    assert_eq!(relation.shard_count(), 4);

    // A single relation that already has its one index: `\shard r 1`
    // is likewise a no-op.
    let rel = relation_with(&series, FeatureScheme::paper_default());
    let mut single = Database::new();
    single.add_relation_indexed(rel);
    let generation = single.generation();
    single.shard_relation("r", 1).unwrap();
    assert_eq!(single.generation(), generation);
}
