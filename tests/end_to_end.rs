//! End-to-end integration: persistence through querying, the paper's
//! "same disk accesses" claim for the identity transformation, framework ↔
//! domain bridging, and join-method consistency at realistic scale.

mod common;

use common::{indexed_db, walk_relation};
use similarity_queries::core::{SearchConfig, TransformationSet};
use similarity_queries::prelude::*;
use similarity_queries::query::QueryOutput;
use similarity_queries::storage::persist;

/// Figures 8–9's structural claim: with the identity transformation, the
/// transformed index traversal reads exactly the same nodes as the plain
/// one — the overhead is CPU only.
#[test]
fn identity_transform_costs_no_extra_node_accesses() {
    let rel = walk_relation("r", 21, 1000, 128);
    let index = rel.build_index(Default::default());
    let scheme = rel.scheme().clone();
    let q = rel.row(123).unwrap();
    for eps in [0.5, 2.0, 8.0] {
        let rect = scheme.search_rect(&q.features.point, eps);
        let (plain, s_plain) = index.range(&rect);
        let identity = SeriesTransform::Identity.lower(&scheme, 128).unwrap();
        let (transformed, s_t) = index.range_transformed(&identity, &rect);
        let mut a = plain;
        let mut b = transformed;
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_eq!(s_plain.nodes_visited, s_t.nodes_visited, "eps {eps}");
        assert_eq!(s_plain.leaves_visited, s_t.leaves_visited);
        assert_eq!(s_plain.entries_tested, s_t.entries_tested);
    }
}

/// Save → load → identical query answers.
#[test]
fn persistence_preserves_query_results() {
    let rel = walk_relation("walks", 5, 200, 64);
    let path = std::env::temp_dir().join("simq-e2e-roundtrip.txt");
    persist::save(&rel, &path).unwrap();
    let reloaded = persist::load(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let db1 = indexed_db(rel);
    let db2 = indexed_db(reloaded);
    for q in [
        "FIND SIMILAR TO ROW 7 IN walks USING mavg(10) ON BOTH EPSILON 2.0",
        "FIND 5 NEAREST TO ROW 0 IN walks",
        "FIND PAIRS IN walks USING mavg(20) EPSILON 1.0 METHOD d",
    ] {
        let r1 = execute(&db1, q).unwrap();
        let r2 = execute(&db2, q).unwrap();
        assert_eq!(
            format!("{:?}", r1.output),
            format!("{:?}", r2.output),
            "{q}"
        );
    }
}

/// The generic framework distance agrees with the domain pipeline: a
/// moving-average rule bridged through `into_core_rule` produces the same
/// distances as the spectral implementation.
#[test]
fn framework_and_domain_agree_on_moving_average_distance() {
    let mut gen = WalkGenerator::new(9);
    let a = gen.series(32);
    let b = gen.series(32);
    let na = normal_form(&a).unwrap();
    let nb = normal_form(&b).unwrap();

    // Domain: distance between smoothed normal forms.
    let sa = moving_average(&na, 5).unwrap();
    let sb = moving_average(&nb, 5).unwrap();
    let direct = euclidean(&sa, &sb);

    // Framework: Equation 10 search with a single zero-ish-cost rule
    // applied to both sides.
    let rules = TransformationSet::empty()
        .with(SeriesTransform::MovingAverage { window: 5 }.into_core_rule(0.01));
    let result = similarity_queries::core::similarity_distance(
        &RealSequence::new(na),
        &RealSequence::new(nb),
        &rules,
        &SearchConfig::with_budget(0.05),
    )
    .unwrap();
    // Search applies the rule to both sides (cost 0.02) when that helps.
    assert!(
        (result.distance - (direct + 0.02)).abs() < 1e-9 || result.distance <= direct + 0.02 + 1e-9,
        "framework {} vs domain {}",
        result.distance,
        direct
    );
}

/// Method d's doubled answer-set bookkeeping from Table 1: the paper
/// counts ordered pairs (24 = 12×2); we canonicalize, so method d's pair
/// count equals methods a/b's.
#[test]
fn table_1_shape_at_small_scale() {
    let rel = walk_relation("r", 33, 150, 128);
    let db = indexed_db(rel);
    let counts: Vec<(char, usize, u64, u64)> = ['a', 'b', 'c', 'd']
        .iter()
        .map(|m| {
            let r = execute(
                &db,
                &format!("FIND PAIRS IN r USING mavg(20) EPSILON 1.5 METHOD {m}"),
            )
            .unwrap();
            let QueryOutput::Pairs(p) = r.output else {
                unreachable!()
            };
            (
                *m,
                p.len(),
                r.stats.coefficients_compared,
                r.stats.nodes_visited,
            )
        })
        .collect();
    let (_, n_a, coeff_a, _) = counts[0];
    let (_, n_b, coeff_b, _) = counts[1];
    let (_, n_c, _, nodes_c) = counts[2];
    let (_, n_d, _, nodes_d) = counts[3];
    assert_eq!(n_a, n_b);
    assert_eq!(n_b, n_d);
    // Method c answers a different (untransformed) question: typically
    // fewer pairs at the same ε on smoothed queries.
    assert!(n_c <= n_b, "c={n_c} b={n_b}");
    // Early abandoning saves coefficient comparisons.
    assert!(coeff_b < coeff_a);
    // Method d does at least as much index work as method c.
    assert!(nodes_d >= nodes_c / 4);
}

/// Stats windows (GK95 shift/scale) restrict matches by mean/std.
#[test]
fn stats_windows_constrain_search() {
    let rel = walk_relation("r", 55, 300, 64);
    let scheme = rel.scheme().clone();
    let index = rel.build_index(Default::default());
    let q = rel.row(10).unwrap();
    let wide = scheme.search_rect(&q.features.point, 1.0);
    let narrow = scheme.search_rect_with_stats(&q.features.point, 1.0, Some((1.0, 0.5)));
    let (wide_hits, _) = index.range(&wide);
    let (narrow_hits, _) = index.range(&narrow);
    assert!(narrow_hits.len() <= wide_hits.len());
    assert!(narrow_hits.contains(&10));
    // Every narrow hit's stats are inside the window.
    for id in narrow_hits {
        let row = rel.row(id).unwrap();
        assert!((row.features.mean - q.features.mean).abs() <= 1.0 + 1e-9);
        assert!((row.features.std_dev - q.features.std_dev).abs() <= 0.5 + 1e-9);
    }
}

/// Index maintenance under churn: insertions and deletions keep queries
/// exact (no stale index answers).
#[test]
fn index_stays_exact_under_updates() {
    use similarity_queries::index::Rect;
    let rel = walk_relation("r", 77, 120, 64);
    let mut index = rel.build_index(Default::default());
    let scheme = rel.scheme().clone();

    // Remove a third of the rows from the index.
    for id in (0..120u64).filter(|i| i % 3 == 0) {
        let p = &rel.row(id).unwrap().features.point;
        assert!(index.remove(&Rect::point(p), id));
    }
    index.check_invariants().unwrap();

    let q = rel.row(1).unwrap();
    let rect = scheme.search_rect(&q.features.point, 5.0);
    let (hits, _) = index.range(&rect);
    assert!(hits.iter().all(|id| id % 3 != 0));

    // Reinsert them; answers must match a fresh index.
    for id in (0..120u64).filter(|i| i % 3 == 0) {
        let p = &rel.row(id).unwrap().features.point;
        index.insert_point(p, id);
    }
    index.check_invariants().unwrap();
    let fresh = rel.build_index(Default::default());
    let (mut a, _) = index.range(&rect);
    let (mut b, _) = fresh.range(&rect);
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b);
}
