//! Wire-protocol robustness as a property (the frame-level sibling of
//! `parser_fuzz.rs`): whatever bytes arrive, `wire::decode_frame` and
//! the `proto` payload decoders return `Ok` or a *structured*
//! [`WireError`] — never a panic, an out-of-bounds slice, or an
//! unchecked allocation. On a live server, garbage and malformed
//! frames produce one structured error frame followed by a clean
//! connection close — not a hang, not a protocol desync.

mod common;

use common::*;
use proptest::prelude::*;
use similarity_queries::prelude::*;
use similarity_queries::server::proto::{Request, Response};
use similarity_queries::server::wire::{self, FrameKind};
use std::io::Read;
use std::net::{SocketAddr, TcpStream};

proptest! {
    /// Arbitrary byte soup never panics the frame decoder.
    #[test]
    fn decode_frame_never_panics(bytes in prop::collection::vec(0u8..=255, 0..200)) {
        let _ = wire::decode_frame(&bytes);
    }

    /// A valid frame truncated at any point decodes to an error.
    #[test]
    fn truncated_frames_are_structured_errors(
        payload in prop::collection::vec(0u8..=255, 0..64),
        cut_seed in 0usize..1_000_000,
    ) {
        let frame = wire::encode_frame(FrameKind::Query, &payload);
        let cut = cut_seed % frame.len(); // strictly shorter than the frame
        prop_assert!(wire::decode_frame(&frame[..cut]).is_err());
    }

    /// Every single-bit corruption of a valid frame is detected — the
    /// checksum covers header and payload, so no flip slips through.
    #[test]
    fn bit_flips_never_pass(
        payload in prop::collection::vec(0u8..=255, 0..64),
        flip_seed in 0usize..1_000_000,
    ) {
        let mut frame = wire::encode_frame(FrameKind::Exec, &payload);
        let bit = flip_seed % (frame.len() * 8);
        frame[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(wire::decode_frame(&frame).is_err(), "flip of bit {bit} went undetected");
    }

    /// Payload decoding is total for every frame kind: random bytes in
    /// a well-formed frame produce a request/response or a structured
    /// `Malformed` error, never a panic.
    #[test]
    fn payload_decoders_never_panic(
        kind_byte in 0u8..=255,
        payload in prop::collection::vec(0u8..=255, 0..128),
    ) {
        if let Ok(kind) = FrameKind::from_u8(kind_byte) {
            let _ = Request::decode(kind, &payload);
            let _ = Response::decode(kind, &payload);
        }
    }
}

fn spawn_server() -> (Server, SocketAddr) {
    let server = Server::bind("127.0.0.1:0", indexed_db(walk_relation("walks", 5, 50, 32)))
        .expect("server binds");
    let addr = server.local_addr();
    (server, addr)
}

/// Reads whatever the server sends until EOF, returning the decoded
/// frames. Panics if the stream does not close.
fn drain_to_eof(stream: &mut TcpStream) -> Vec<(FrameKind, Vec<u8>)> {
    let mut frames = Vec::new();
    loop {
        match wire::read_frame(stream) {
            Ok((kind, payload)) => frames.push((kind, payload)),
            Err(wire::WireError::Closed) => return frames,
            Err(other) => panic!("stream ended abnormally: {other}"),
        }
    }
}

#[test]
fn garbage_bytes_get_an_error_frame_then_clean_close() {
    let (server, addr) = spawn_server();
    let mut stream = TcpStream::connect(addr).expect("raw socket connects");
    {
        use std::io::Write;
        stream
            .write_all(b"NOT A SIMQ FRAME AT ALL, JUST NOISE \x00\xff\xfe")
            .expect("garbage writes");
    }
    let frames = drain_to_eof(&mut stream);
    assert_eq!(frames.len(), 1, "exactly one reply: {frames:?}");
    assert_eq!(frames[0].0, FrameKind::Error, "the reply is an error frame");
    let decoded = Response::decode(FrameKind::Error, &frames[0].1).expect("error frame decodes");
    assert!(matches!(decoded, Response::Error { .. }), "{decoded:?}");
    server.shutdown();
}

#[test]
fn malformed_payload_after_handshake_errors_and_closes() {
    let (server, addr) = spawn_server();
    let mut stream = TcpStream::connect(addr).expect("raw socket connects");
    let hello = Request::Hello {
        client: "fuzz".into(),
    };
    wire::write_frame(&mut stream, hello.kind(), &hello.encode()).expect("hello writes");
    let (kind, _) = wire::read_frame(&mut stream).expect("handshake answered");
    assert_eq!(kind, FrameKind::HelloOk);
    // A perfectly framed Query whose payload is not a valid string
    // length + UTF-8: the frame layer accepts it, the payload decoder
    // must reject it with a structured error, and the server closes.
    wire::write_frame(
        &mut stream,
        FrameKind::Query,
        &[0xff, 0xff, 0xff, 0xff, 0x01],
    )
    .expect("malformed query writes");
    let frames = drain_to_eof(&mut stream);
    assert_eq!(frames.len(), 1, "exactly one reply: {frames:?}");
    assert_eq!(frames[0].0, FrameKind::Error);
    server.shutdown();
}

#[test]
fn bit_flipped_frame_on_the_socket_errors_and_closes() {
    let (server, addr) = spawn_server();
    let mut stream = TcpStream::connect(addr).expect("raw socket connects");
    let hello = Request::Hello {
        client: "fuzz".into(),
    };
    wire::write_frame(&mut stream, hello.kind(), &hello.encode()).expect("hello writes");
    let (kind, _) = wire::read_frame(&mut stream).expect("handshake answered");
    assert_eq!(kind, FrameKind::HelloOk);
    let query = Request::Query {
        text: "FIND 1 NEAREST TO ROW 0 IN walks".into(),
    };
    let mut frame = wire::encode_frame(query.kind(), &query.encode());
    let last = frame.len() - 1;
    frame[last] ^= 0x40; // corrupt the checksum trailer in flight
    {
        use std::io::Write;
        stream.write_all(&frame).expect("corrupted frame writes");
    }
    let frames = drain_to_eof(&mut stream);
    assert_eq!(frames.len(), 1, "exactly one reply: {frames:?}");
    assert_eq!(frames[0].0, FrameKind::Error);
    server.shutdown();
}

#[test]
fn abrupt_disconnect_mid_frame_leaves_the_server_serving() {
    let (server, addr) = spawn_server();
    {
        use std::io::Write;
        let mut stream = TcpStream::connect(addr).expect("raw socket connects");
        // Half a header, then vanish.
        stream
            .write_all(b"SIMQ\x01")
            .expect("partial header writes");
    } // dropped: RST/FIN mid-frame
      // The server must shrug that off and serve the next client fully.
    let mut client = Client::connect(addr).expect("client connects after the rude one");
    let result = client
        .query("FIND 1 NEAREST TO ROW 0 IN walks")
        .expect("query runs");
    match result.output {
        similarity_queries::query::QueryOutput::Hits(hits) => assert_eq!(hits[0].id, 0),
        other => panic!("expected hits, got {other:?}"),
    }
    client.goodbye().expect("orderly close");
    server.shutdown();
}

/// `read_frame` on a socket the peer closed cleanly reports `Closed`,
/// not a bogus truncation (EOF before any byte vs EOF mid-frame).
#[test]
fn eof_before_any_byte_is_closed_not_truncated() {
    let (server, addr) = spawn_server();
    let mut stream = TcpStream::connect(addr).expect("raw socket connects");
    let bye = Request::Goodbye;
    // Without a handshake the server rejects Goodbye as a protocol
    // error and closes; after draining, further reads are EOF.
    wire::write_frame(&mut stream, bye.kind(), &bye.encode()).expect("goodbye writes");
    let _ = drain_to_eof(&mut stream);
    let mut rest = Vec::new();
    assert_eq!(stream.read_to_end(&mut rest).unwrap_or(0), 0);
    server.shutdown();
}
