//! Parallel/serial equivalence as an executable property: for every query
//! form (range, kNN, all-pairs join), every access path, and any thread
//! count, parallel execution returns *identical* hit sets and identical
//! (bitwise) distances to the serial paths on random-walk corpora.
//!
//! This is the contract that makes [`Parallelism`] a pure throughput knob:
//! the parallel subsystem only reschedules the exact serial per-row /
//! per-node computations and merges deterministically.

mod common;

use common::{assert_parallel_equivalent as assert_equivalent, corpus, db_with};
use proptest::prelude::*;
use similarity_queries::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Range queries: identical hits and distances, 1 vs N threads, on
    /// both access paths and with transformations.
    #[test]
    fn range_parallel_equals_serial(
        seed in 0u64..400,
        row in 0usize..40,
        eps in 0.1f64..8.0,
        threads in 2usize..9,
        force_scan in prop_oneof![Just(""), Just(" FORCE SCAN")],
        t in prop_oneof![
            Just(""),
            Just(" USING mavg(5) ON BOTH"),
            Just(" USING reverse ON BOTH"),
        ],
    ) {
        let series = corpus(seed, 40, 64);
        let mut db = db_with(&series, FeatureScheme::paper_default());
        let q = format!("FIND SIMILAR TO ROW {row} IN r{t} EPSILON {eps}{force_scan}");
        assert_equivalent(&mut db, &q, threads);
    }

    /// kNN queries: identical neighbour lists, 1 vs N threads, on both
    /// access paths.
    #[test]
    fn knn_parallel_equals_serial(
        seed in 0u64..400,
        row in 0usize..30,
        k in 1usize..12,
        threads in 2usize..9,
        force_scan in prop_oneof![Just(""), Just(" FORCE SCAN")],
    ) {
        let series = corpus(seed.wrapping_add(13), 30, 64);
        let mut db = db_with(&series, FeatureScheme::paper_default());
        let q = format!("FIND {k} NEAREST TO ROW {row} IN r{force_scan}");
        assert_equivalent(&mut db, &q, threads);
    }

    /// All-pairs joins: identical pair sets and distances, 1 vs N threads,
    /// for the scan methods (a, b) and the probe-join methods (c, d).
    #[test]
    fn join_parallel_equals_serial(
        seed in 0u64..300,
        eps in 0.3f64..4.0,
        threads in 2usize..9,
        method in prop_oneof![Just('a'), Just('b'), Just('c'), Just('d')],
    ) {
        let series = corpus(seed.wrapping_add(29), 30, 64);
        let mut db = db_with(&series, FeatureScheme::paper_default());
        let q = format!("FIND PAIRS IN r USING mavg(8) EPSILON {eps} METHOD {method}");
        assert_equivalent(&mut db, &q, threads);
    }

    /// The rectangular representation exercises the Euclidean kNN path.
    #[test]
    fn rect_scheme_parallel_equals_serial(
        seed in 0u64..200,
        row in 0usize..25,
        k in 1usize..8,
        threads in 2usize..6,
    ) {
        let series = corpus(seed.wrapping_add(53), 25, 32);
        let mut db = db_with(&series, FeatureScheme::new(3, Representation::Rectangular, false));
        let q = format!("FIND {k} NEAREST TO ROW {row} IN r");
        assert_equivalent(&mut db, &q, threads);
    }
}

/// Non-random regression at a size where every parallel code path engages
/// its multi-threaded branch (frontiers form, chunks are non-trivial).
#[test]
fn large_corpus_all_forms_equivalent() {
    let series = corpus(4242, 600, 128);
    let mut db = db_with(&series, FeatureScheme::paper_default());
    for threads in [2, 4, 8] {
        for q in [
            "FIND SIMILAR TO ROW 11 IN r EPSILON 6.0",
            "FIND SIMILAR TO ROW 11 IN r EPSILON 6.0 FORCE SCAN",
            "FIND SIMILAR TO ROW 11 IN r USING mavg(20) ON BOTH EPSILON 4.0",
            "FIND 25 NEAREST TO ROW 11 IN r",
            "FIND 25 NEAREST TO ROW 11 IN r FORCE SCAN",
            "FIND PAIRS IN r EPSILON 1.0 METHOD b",
            "FIND PAIRS IN r EPSILON 1.0 METHOD d",
        ] {
            assert_equivalent(&mut db, q, threads);
        }
    }
}
