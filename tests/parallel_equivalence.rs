//! Parallel/serial equivalence as an executable property: for every query
//! form (range, kNN, all-pairs join), every access path, and any thread
//! count, parallel execution returns *identical* hit sets and identical
//! (bitwise) distances to the serial paths on random-walk corpora.
//!
//! This is the contract that makes [`Parallelism`] a pure throughput knob:
//! the parallel subsystem only reschedules the exact serial per-row /
//! per-node computations and merges deterministically.

use proptest::prelude::*;
use similarity_queries::prelude::*;
use similarity_queries::query::QueryOutput;

/// Builds a deterministic corpus of random-walk series.
fn corpus(seed: u64, rows: usize, len: usize) -> Vec<Vec<f64>> {
    let mut gen = WalkGenerator::new(seed);
    (0..rows).map(|_| gen.series(len)).collect()
}

fn db_with(series: &[Vec<f64>], scheme: FeatureScheme) -> Database {
    let mut rel = SeriesRelation::new("r", series[0].len(), scheme);
    for (i, s) in series.iter().enumerate() {
        rel.insert(format!("S{i}"), s.clone()).unwrap();
    }
    let mut db = Database::new();
    db.add_relation_indexed(rel);
    db
}

/// Runs `query` serially and at `threads`, asserting identical outputs.
fn assert_equivalent(db: &mut Database, query: &str, threads: usize) {
    db.set_parallelism(Parallelism::Serial);
    let serial = execute(db, query).unwrap();
    db.set_parallelism(Parallelism::Fixed(threads));
    let parallel = execute(db, query).unwrap();
    // threads_used reports the actual fan-out; a degraded parallel plan
    // (few rows, tiny frontier) may cap it below the configured count.
    assert!(
        (1..=threads as u64).contains(&parallel.stats.threads_used),
        "{query}: threads_used {}",
        parallel.stats.threads_used
    );
    match (&serial.output, &parallel.output) {
        (QueryOutput::Hits(a), QueryOutput::Hits(b)) => {
            assert_eq!(a.len(), b.len(), "{query} (threads {threads})");
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.id, y.id, "{query} (threads {threads})");
                assert_eq!(
                    x.distance.to_bits(),
                    y.distance.to_bits(),
                    "{query} (threads {threads}): {} vs {}",
                    x.distance,
                    y.distance
                );
            }
        }
        (QueryOutput::Pairs(a), QueryOutput::Pairs(b)) => {
            assert_eq!(a.len(), b.len(), "{query} (threads {threads})");
            for (x, y) in a.iter().zip(b) {
                assert_eq!((x.a, x.b), (y.a, y.b), "{query} (threads {threads})");
                assert_eq!(x.distance.to_bits(), y.distance.to_bits());
            }
        }
        other => panic!("mismatched outputs for {query}: {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Range queries: identical hits and distances, 1 vs N threads, on
    /// both access paths and with transformations.
    #[test]
    fn range_parallel_equals_serial(
        seed in 0u64..400,
        row in 0usize..40,
        eps in 0.1f64..8.0,
        threads in 2usize..9,
        force_scan in prop_oneof![Just(""), Just(" FORCE SCAN")],
        t in prop_oneof![
            Just(""),
            Just(" USING mavg(5) ON BOTH"),
            Just(" USING reverse ON BOTH"),
        ],
    ) {
        let series = corpus(seed, 40, 64);
        let mut db = db_with(&series, FeatureScheme::paper_default());
        let q = format!("FIND SIMILAR TO ROW {row} IN r{t} EPSILON {eps}{force_scan}");
        assert_equivalent(&mut db, &q, threads);
    }

    /// kNN queries: identical neighbour lists, 1 vs N threads, on both
    /// access paths.
    #[test]
    fn knn_parallel_equals_serial(
        seed in 0u64..400,
        row in 0usize..30,
        k in 1usize..12,
        threads in 2usize..9,
        force_scan in prop_oneof![Just(""), Just(" FORCE SCAN")],
    ) {
        let series = corpus(seed.wrapping_add(13), 30, 64);
        let mut db = db_with(&series, FeatureScheme::paper_default());
        let q = format!("FIND {k} NEAREST TO ROW {row} IN r{force_scan}");
        assert_equivalent(&mut db, &q, threads);
    }

    /// All-pairs joins: identical pair sets and distances, 1 vs N threads,
    /// for the scan methods (a, b) and the probe-join methods (c, d).
    #[test]
    fn join_parallel_equals_serial(
        seed in 0u64..300,
        eps in 0.3f64..4.0,
        threads in 2usize..9,
        method in prop_oneof![Just('a'), Just('b'), Just('c'), Just('d')],
    ) {
        let series = corpus(seed.wrapping_add(29), 30, 64);
        let mut db = db_with(&series, FeatureScheme::paper_default());
        let q = format!("FIND PAIRS IN r USING mavg(8) EPSILON {eps} METHOD {method}");
        assert_equivalent(&mut db, &q, threads);
    }

    /// The rectangular representation exercises the Euclidean kNN path.
    #[test]
    fn rect_scheme_parallel_equals_serial(
        seed in 0u64..200,
        row in 0usize..25,
        k in 1usize..8,
        threads in 2usize..6,
    ) {
        let series = corpus(seed.wrapping_add(53), 25, 32);
        let mut db = db_with(&series, FeatureScheme::new(3, Representation::Rectangular, false));
        let q = format!("FIND {k} NEAREST TO ROW {row} IN r");
        assert_equivalent(&mut db, &q, threads);
    }
}

/// Non-random regression at a size where every parallel code path engages
/// its multi-threaded branch (frontiers form, chunks are non-trivial).
#[test]
fn large_corpus_all_forms_equivalent() {
    let series = corpus(4242, 600, 128);
    let mut db = db_with(&series, FeatureScheme::paper_default());
    for threads in [2, 4, 8] {
        for q in [
            "FIND SIMILAR TO ROW 11 IN r EPSILON 6.0",
            "FIND SIMILAR TO ROW 11 IN r EPSILON 6.0 FORCE SCAN",
            "FIND SIMILAR TO ROW 11 IN r USING mavg(20) ON BOTH EPSILON 4.0",
            "FIND 25 NEAREST TO ROW 11 IN r",
            "FIND 25 NEAREST TO ROW 11 IN r FORCE SCAN",
            "FIND PAIRS IN r EPSILON 1.0 METHOD b",
            "FIND PAIRS IN r EPSILON 1.0 METHOD d",
        ] {
            assert_equivalent(&mut db, q, threads);
        }
    }
}
