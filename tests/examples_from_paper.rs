//! The paper's worked examples as executable tests: the concrete numbers
//! of Example 1.1, the warped sequences of Example 1.2, the qualitative
//! distance cascades of Examples 2.1–2.3, and the Theorem 2
//! counterexample.

mod common;

use common::indexed_db;
use similarity_queries::data::{MarketConfig, StockKind, StockMarket};
use similarity_queries::prelude::*;
use similarity_queries::series::normal;

const S1: [f64; 15] = [
    36.0, 38.0, 40.0, 38.0, 42.0, 38.0, 36.0, 36.0, 37.0, 38.0, 39.0, 38.0, 40.0, 38.0, 37.0,
];
const S2: [f64; 15] = [
    40.0, 37.0, 37.0, 42.0, 41.0, 35.0, 40.0, 35.0, 34.0, 42.0, 38.0, 35.0, 45.0, 36.0, 34.0,
];

/// Example 1.1: D(s1, s2) = 11.92; the 3-day moving averages are at 0.47.
#[test]
fn example_1_1_numbers() {
    assert!((euclidean(&S1, &S2) - 11.92).abs() < 0.005);
    let m1 = moving_average(&S1, 3).unwrap();
    let m2 = moving_average(&S2, 3).unwrap();
    assert!((euclidean(&m1, &m2) - 0.47).abs() < 0.005);
}

/// Example 1.1 through the query engine. The engine compares normal
/// forms, where D(n1, n2) ≈ 4.33 raw and ≈ 1.22 after the 3-day moving
/// average: at ε = 1.5 the smoothed query finds both series, the raw one
/// only the query itself.
#[test]
fn example_1_1_as_queries() {
    let mut rel = SeriesRelation::new(
        "stocks",
        15,
        FeatureScheme::new(2, Representation::Polar, true),
    );
    rel.insert("s1", S1.to_vec()).unwrap();
    rel.insert("s2", S2.to_vec()).unwrap();
    let db = indexed_db(rel);

    // Raw: only s1 itself within ε = 1 (normal-form distance of the two
    // series is large as well).
    let raw = execute(&db, "FIND SIMILAR TO NAME s1 IN stocks EPSILON 1.5").unwrap();
    let QueryOutput::Hits(raw_hits) = raw.output else {
        unreachable!()
    };
    assert_eq!(raw_hits.len(), 1);

    // Smoothed: both series qualify. (The engine works on normal forms;
    // the 3-day average of the normal forms is correspondingly close.)
    let smoothed = execute(
        &db,
        "FIND SIMILAR TO NAME s1 IN stocks USING mavg(3) ON BOTH EPSILON 1.5",
    )
    .unwrap();
    let QueryOutput::Hits(smoothed_hits) = smoothed.output else {
        unreachable!()
    };
    assert_eq!(smoothed_hits.len(), 2, "{smoothed_hits:?}");
}

/// Example 1.2: warping p by 2 gives exactly the 8-point series of
/// Figure 2, and the Euclidean distance becomes 0.
#[test]
fn example_1_2_time_warping() {
    let s = [20.0, 20.0, 21.0, 21.0, 20.0, 20.0, 23.0, 23.0];
    let p = [20.0, 21.0, 20.0, 23.0];
    let warped = warp(&p, 2).unwrap();
    assert_eq!(warped, s.to_vec());
    assert_eq!(euclidean(&warped, &s), 0.0);
}

/// Example 2.1's cascade on simulated data: shifting, scaling to normal
/// form, and smoothing each reduce the distance between same-sector
/// stocks.
#[test]
fn example_2_1_distance_cascade() {
    let market = StockMarket::generate(
        &MarketConfig {
            stocks: 60,
            sectors: 3,
            mirrored_fraction: 0.0,
            volatility: (0.05, 0.4),
            ..MarketConfig::default()
        },
        5,
    );
    // Find a same-sector pair with distinct price levels.
    let (a, b) = (0..market.stocks.len())
        .flat_map(|i| ((i + 1)..market.stocks.len()).map(move |j| (i, j)))
        .find(|&(i, j)| {
            matches!(
                (market.stocks[i].kind, market.stocks[j].kind),
                (StockKind::Sectoral { sector: x }, StockKind::Sectoral { sector: y }) if x == y
            )
        })
        .expect("sectors are populated");
    let pa = &market.stocks[a].prices;
    let pb = &market.stocks[b].prices;

    let d_raw = euclidean(pa, pb);
    let d_shifted = euclidean(
        &normal::shift(pa, -normal::mean(pa)),
        &normal::shift(pb, -normal::mean(pb)),
    );
    let na = normal_form(pa).unwrap();
    let nb = normal_form(pb).unwrap();
    let d_scaled = euclidean(&na, &nb);
    let d_smoothed = euclidean(
        &moving_average(&na, 20).unwrap(),
        &moving_average(&nb, 20).unwrap(),
    );
    assert!(d_shifted <= d_raw + 1e-9, "shift: {d_shifted} vs {d_raw}");
    assert!(
        d_smoothed < d_scaled,
        "smoothing must reduce same-sector distance: {d_smoothed} vs {d_scaled}"
    );
    // The full cascade helps a lot overall.
    assert!(d_smoothed < d_raw / 2.0);
}

/// Example 2.2: an anti-correlated pair is far apart raw, and close after
/// reversal + smoothing.
#[test]
fn example_2_2_reversal() {
    let market = StockMarket::generate(
        &MarketConfig {
            stocks: 80,
            mirrored_fraction: 0.3,
            ..MarketConfig::default()
        },
        9,
    );
    let (orig, mirror) = market
        .stocks
        .iter()
        .enumerate()
        .find_map(|(i, s)| match s.kind {
            StockKind::Mirror { of } => Some((of, i)),
            StockKind::Sectoral { .. } => None,
        })
        .expect("mirrors generated");
    let na = normal_form(&market.stocks[orig].prices).unwrap();
    let nb = normal_form(&market.stocks[mirror].prices).unwrap();
    let d_normal = euclidean(&na, &nb);
    let reversed: Vec<f64> = nb.iter().map(|v| -v).collect();
    let d_reversed = euclidean(&na, &reversed);
    let d_final = euclidean(
        &moving_average(&na, 20).unwrap(),
        &moving_average(&reversed, 20).unwrap(),
    );
    assert!(d_reversed < d_normal / 3.0, "{d_reversed} vs {d_normal}");
    assert!(d_final <= d_reversed + 1e-9);
}

/// Example 2.3: unrelated series stay far apart under repeated smoothing
/// — "two series that have dissimilar trends still look different".
#[test]
fn example_2_3_smoothing_does_not_fake_similarity() {
    let market = StockMarket::generate(
        &MarketConfig {
            stocks: 40,
            sectors: 8,
            mirrored_fraction: 0.0,
            ..MarketConfig::default()
        },
        13,
    );
    // The claim is statistical — individual pairs vary — so measure it
    // over every cross-sector pair rather than one arbitrary draw.
    let smoothed: Vec<Option<Vec<f64>>> = market
        .stocks
        .iter()
        .map(|s| {
            let mut nf = normal_form(&s.prices).ok()?;
            for _ in 0..10 {
                nf = moving_average(&nf, 20).ok()?;
            }
            Some(nf)
        })
        .collect();
    let mut initial_sum = 0.0;
    let mut after_sum = 0.0;
    let mut pairs = 0usize;
    for i in 0..market.stocks.len() {
        for j in (i + 1)..market.stocks.len() {
            let (StockKind::Sectoral { sector: si }, StockKind::Sectoral { sector: sj }) =
                (market.stocks[i].kind, market.stocks[j].kind)
            else {
                continue;
            };
            if si == sj {
                continue;
            }
            let (Some(a), Some(b)) = (&smoothed[i], &smoothed[j]) else {
                continue;
            };
            initial_sum += euclidean(
                &normal_form(&market.stocks[i].prices).unwrap(),
                &normal_form(&market.stocks[j].prices).unwrap(),
            );
            after_sum += euclidean(a, b);
            pairs += 1;
        }
    }
    assert!(pairs > 100, "only {pairs} cross-sector pairs");
    // Distances shrink slowly — after ten rounds a substantial fraction
    // remains on average (the paper reports 11.06 → 6.57 after ten).
    assert!(
        after_sum > initial_sum * 0.25,
        "ten smoothings erased too much: {initial_sum} → {after_sum} over {pairs} pairs"
    );
}

/// Theorem 2's counterexample: multiplying by the complex scalar 2−3j maps
/// the rectangle [−5−5j, 5+5j] to a shape whose MBR test misclassifies the
/// interior point −2+2j — reproduced on our Complex type, and rejected by
/// the lowering machinery.
#[test]
fn theorem_2_counterexample() {
    let s = Complex::new(2.0, -3.0);
    let p = Complex::new(-5.0, -5.0) * s;
    let q = Complex::new(5.0, 5.0) * s;
    let r = Complex::new(-2.0, 2.0) * s;
    assert_eq!(p, Complex::new(-25.0, 5.0));
    assert_eq!(q, Complex::new(25.0, -5.0));
    assert_eq!(r, Complex::new(2.0, 10.0));
    // r is outside the axis-aligned rectangle spanned by p and q (its
    // imaginary part exceeds both corners').
    assert!(r.im > p.im.max(q.im));

    // The engine refuses exactly this: complex multipliers cannot lower to
    // the rectangular representation.
    let rect_scheme = FeatureScheme::new(2, Representation::Rectangular, false);
    let err = SeriesTransform::MovingAverage { window: 3 }
        .lower(&rect_scheme, 16)
        .unwrap_err();
    assert!(err.to_string().contains("not safe"));
}

/// Theorem 3 in action: the same transformation lowers fine in polar
/// coordinates, and the lowered map agrees with the spectral action.
#[test]
fn theorem_3_polar_safety() {
    use similarity_queries::index::SpatialTransform;
    let scheme = FeatureScheme::new(3, Representation::Polar, false);
    let t = SeriesTransform::MovingAverage { window: 3 };
    let affine = t.lower(&scheme, 16).unwrap();
    let series: Vec<f64> = (0..16).map(|i| 20.0 + ((i * i) % 7) as f64).collect();
    let f = scheme.extract(&series).unwrap();
    let moved = affine.apply_point(&f.point);
    let spec = t.apply_spectrum(&f.spectrum, 16).unwrap();
    let direct = scheme.point_from_spectrum(0.0, 0.0, &spec).unwrap();
    let a = scheme.coefficients_of_point(&moved);
    let b = scheme.coefficients_of_point(&direct);
    for (x, y) in a.iter().zip(&b) {
        assert!(x.approx_eq(*y, 1e-9));
    }
}
