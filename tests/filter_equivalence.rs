//! The quantized filter tier's contract as executable properties.
//!
//! 1. **No false dismissals, end to end**: every query form — range
//!    (identity and transformed, with statistics windows, forced to scan
//!    or index), kNN and all-pairs joins (scan and probe methods) —
//!    returns *bitwise identical* output with the signature filter on
//!    and off: same ids, same names, same order, bitwise-equal
//!    distances. Pinned at 1 and 4 threads, 1 and 4 shards, in memory
//!    and after a snapshot reload.
//! 2. **The tier actually engages**: on a dense corpus with a tight
//!    threshold, the filtered run dismisses candidates
//!    (`filtered_out > 0`) and touches strictly fewer spectrum
//!    coefficients than the unfiltered run — the filter is a pure
//!    work-saving layer, not a no-op.
//! 3. **Pointwise soundness**: for adversarial spectra (negatives,
//!    denormals, zeros, huge magnitudes, identical series) the quantized
//!    lower bound never exceeds the true verification distance whenever
//!    that distance is finite — the per-row inequality behind property 1.
//! 4. **Build-path independence**: signatures are bit-identical whether a
//!    relation was bulk loaded, incrementally inserted, batch inserted,
//!    WAL-replayed or resharded, and a reopened snapshot filters with
//!    the exact same dismissal counts as the database that wrote it.

mod common;

use common::{assert_outputs_bitwise_equal, corpus, relation_with};
use proptest::prelude::*;
use similarity_queries::prelude::*;
use similarity_queries::series::distance_outcome;
use similarity_queries::storage::{FilterProbe, SignatureArray, SIG_COEFFS};
use std::sync::atomic::{AtomicU64, Ordering};

/// The query forms the filter tier touches: index range verification
/// (identity and transformed, with windows), two-step kNN verification,
/// and join probe verification — plus scan paths, which bypass the tier
/// and must be unaffected by the toggle.
fn query_matrix() -> Vec<String> {
    vec![
        "FIND SIMILAR TO ROW 0 IN r EPSILON 0.8".into(),
        "FIND SIMILAR TO ROW 0 IN r EPSILON 6.0".into(),
        "FIND SIMILAR TO ROW 1 IN r USING mavg(5) ON BOTH EPSILON 1.5".into(),
        "FIND SIMILAR TO ROW 0 IN r USING reverse ON BOTH EPSILON 2.0".into(),
        "FIND SIMILAR TO ROW 0 IN r EPSILON 3.0 MEAN WITHIN 2.0".into(),
        "FIND SIMILAR TO ROW 0 IN r EPSILON 1.0 FORCE SCAN".into(),
        "FIND 5 NEAREST TO ROW 0 IN r".into(),
        "FIND 3 NEAREST TO ROW 2 IN r USING mavg(5) ON BOTH".into(),
        "FIND PAIRS IN r EPSILON 1.5 METHOD b".into(),
        "FIND PAIRS IN r EPSILON 1.2 METHOD c".into(),
        "FIND PAIRS IN r USING mavg(5) EPSILON 1.0 METHOD d".into(),
    ]
}

/// A database over `series` with the given shard count (1 = unsharded),
/// under the CI environment matrix (threads / WAL / group commit).
fn db_of(series: &[Vec<f64>], shards: usize) -> Database {
    let rel = relation_with(series, FeatureScheme::paper_default());
    let mut db = Database::new();
    if shards <= 1 {
        db.add_relation_indexed(rel);
    } else {
        db.add_relation_sharded(rel, shards);
    }
    common::apply_env_parallelism(&mut db);
    common::apply_env_wal(&mut db);
    common::apply_env_group_commit(&mut db);
    db
}

/// Runs `q` with the filter on and off, asserts bitwise-identical
/// outputs, and returns the filtered run's dismissal count. The
/// unfiltered run must report zero dismissals by definition.
fn assert_filter_transparent(db: &mut Database, q: &str, what: &str) -> u64 {
    db.set_filter(true);
    let filtered = execute(db, q).expect("filtered query runs");
    db.set_filter(false);
    let unfiltered = execute(db, q).expect("unfiltered query runs");
    db.set_filter(true);
    assert_eq!(unfiltered.stats.filtered_out, 0, "{what}: {q}");
    assert_outputs_bitwise_equal(&filtered, &unfiltered, &format!("{what}: {q}"));
    filtered.stats.filtered_out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Filtered and unfiltered execution agree bitwise on every query
    /// form, across thread counts and shard counts, on random corpora.
    #[test]
    fn filtered_equals_unfiltered(
        seed in 0u64..300,
        rows in 30usize..80,
        shards in prop_oneof![Just(1usize), Just(4usize)],
    ) {
        let series = corpus(seed, rows, 64);
        let mut db = db_of(&series, shards);
        for threads in [1usize, 4] {
            db.set_parallelism(if threads == 1 {
                Parallelism::Serial
            } else {
                Parallelism::Fixed(threads)
            });
            for q in query_matrix() {
                assert_filter_transparent(
                    &mut db,
                    &q,
                    &format!("shards {shards}, threads {threads}"),
                );
            }
        }
    }

    /// A database reloaded from a snapshot answers every query form
    /// bitwise-identically to the in-memory original, with the filter in
    /// both states — and, because signatures are recomputed from the
    /// decoded spectra and the tree layout round-trips exactly, with the
    /// *same dismissal counts*.
    #[test]
    fn snapshot_reload_preserves_filter_behaviour(
        seed in 0u64..200,
        shards in prop_oneof![Just(1usize), Just(3usize)],
    ) {
        let series = corpus(seed.wrapping_add(77), 50, 64);
        let mut built = db_of(&series, shards);
        let path = unique_snapshot_path();
        built.save_snapshot(&path).unwrap();
        let mut opened = Database::open_snapshot(&path).unwrap();
        std::fs::remove_file(&path).ok();
        common::apply_env_parallelism(&mut opened);
        for q in query_matrix() {
            let dismissed_built = assert_filter_transparent(&mut built, &q, "built");
            let dismissed_opened = assert_filter_transparent(&mut opened, &q, "reopened");
            assert_eq!(dismissed_built, dismissed_opened, "dismissal counts diverge: {q}");
            built.set_filter(true);
            opened.set_filter(true);
            let a = execute(&built, &q).unwrap();
            let b = execute(&opened, &q).unwrap();
            assert_outputs_bitwise_equal(&a, &b, &format!("built vs reopened: {q}"));
        }
    }
}

/// A value strategy biased toward the places floating-point goes wrong:
/// signed zeros, denormals, huge and tiny magnitudes, and plain values.
fn adversarial_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        -100.0f64..100.0,
        -100.0f64..100.0,
        -100.0f64..100.0,
        Just(0.0f64),
        Just(-0.0f64),
        Just(1.0e-320f64),
        Just(-1.0e-320f64),
        Just(1.0e154f64),
        Just(-1.0e154f64),
        1.0e-45f64..1.0e-38,
        -1.0e-8f64..1.0e-8,
    ]
}

fn complex_vec(len: usize) -> impl Strategy<Value = Vec<Complex>> {
    prop::collection::vec(
        (adversarial_f64(), adversarial_f64()).prop_map(|(re, im)| Complex::new(re, im)),
        len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The pointwise invariant behind the whole tier: for any stored
    /// spectrum, query spectrum and multiplier vector, the quantized
    /// lower bound never exceeds the true squared verification distance
    /// (whenever that distance is finite).
    #[test]
    fn lower_bound_never_exceeds_true_distance(
        n in 1usize..12,
        seed_x in complex_vec(12),
        seed_q in complex_vec(12),
        seed_m in complex_vec(12),
    ) {
        let x = &seed_x[..n];
        let q = &seed_q[..n];
        let m = &seed_m[..n.saturating_sub(1).max(1)];
        let true_sq = distance_outcome(x, m, q, None).dist_sq;
        prop_assume!(true_sq.is_finite());
        let coeffs = n.min(SIG_COEFFS);
        let mut sigs = SignatureArray::new(coeffs);
        sigs.push(x);
        let probe = FilterProbe::new(q, m, coeffs);
        let lb = probe.lower_bound_sq(sigs.row(0).unwrap());
        prop_assert!(
            lb <= true_sq,
            "lower bound {lb:e} exceeds true distance {true_sq:e}"
        );
    }

    /// Identical series (the hardest case for a quantized bound: the true
    /// distance is exactly zero) always get a zero lower bound, for any
    /// multiplier vector applied to both sides symmetrically.
    #[test]
    fn identical_series_are_never_dismissed(
        n in 2usize..12,
        seed_x in complex_vec(12),
    ) {
        let x = &seed_x[..n];
        let m = vec![Complex::ONE; n - 1];
        let true_sq = distance_outcome(x, &m, x, None).dist_sq;
        prop_assume!(true_sq.is_finite());
        let coeffs = n.min(SIG_COEFFS);
        let mut sigs = SignatureArray::new(coeffs);
        sigs.push(x);
        let probe = FilterProbe::new(x, &m, coeffs);
        let lb = probe.lower_bound_sq(sigs.row(0).unwrap());
        prop_assert!(lb <= true_sq, "self-distance {true_sq:e} dismissed by bound {lb:e}");
    }
}

/// On a dense corpus with tight thresholds the tier must actually fire:
/// candidates are dismissed, and the filtered run touches strictly fewer
/// spectrum coefficients than the unfiltered run (every dismissal skips
/// at least one verification chunk).
#[test]
fn filter_engages_and_saves_work() {
    let series = corpus(7, 250, 64);
    let mut db = db_of(&series, 1);
    let mut engaged = 0u64;
    for q in [
        "FIND SIMILAR TO ROW 0 IN r EPSILON 0.6",
        "FIND SIMILAR TO ROW 3 IN r USING mavg(5) ON BOTH EPSILON 0.8",
        "FIND 4 NEAREST TO ROW 1 IN r",
        "FIND PAIRS IN r EPSILON 0.5 METHOD d",
    ] {
        db.set_filter(true);
        let filtered = execute(&db, q).unwrap();
        db.set_filter(false);
        let unfiltered = execute(&db, q).unwrap();
        db.set_filter(true);
        assert_outputs_bitwise_equal(&filtered, &unfiltered, q);
        if filtered.stats.filtered_out > 0 {
            engaged += 1;
            assert!(
                filtered.stats.coefficients_compared < unfiltered.stats.coefficients_compared,
                "{q}: dismissed {} candidates but compared {} >= {} coefficients",
                filtered.stats.filtered_out,
                filtered.stats.coefficients_compared,
                unfiltered.stats.coefficients_compared,
            );
        }
    }
    assert!(
        engaged >= 2,
        "filter tier engaged on only {engaged} of 4 tight queries"
    );
}

fn unique_snapshot_path() -> std::path::PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "simq-filter-equivalence-{}-{}.simq",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed),
    ))
}

fn unique_wal_dir() -> std::path::PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "simq-filter-equivalence-wal-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed),
    ))
}

/// Collects every row's signature bits from a stored relation.
fn signature_bits(db: &Database, rows: usize) -> Vec<Vec<u32>> {
    let rel = db.relation("r").expect("relation r exists");
    (0..rows as u64)
        .map(|id| {
            rel.signature(id)
                .unwrap_or_else(|| panic!("row {id} has a signature"))
                .iter()
                .map(|f| f.to_bits())
                .collect()
        })
        .collect()
}

/// Signatures are derived data recomputed on every build path; whichever
/// way the same rows reach a relation — bulk load, incremental insert,
/// batch insert, WAL replay into a reopened database, or resharding —
/// the stored signatures are bit-for-bit identical and every query
/// answers bitwise-identically with the filter on.
#[test]
fn every_build_path_produces_identical_signatures() {
    let series = corpus(41, 120, 48);
    let rows = series.len();
    let split = rows / 2;

    // Bulk: everything loaded up front.
    let mut bulk = db_of(&series, 1);

    // Incremental: bulk prefix, then one insert_into per remaining row.
    let mut incremental = db_of(&series[..split], 1);
    for (i, s) in series[split..].iter().enumerate() {
        incremental
            .insert_into("r", format!("S{}", split + i), s.clone())
            .unwrap();
    }

    // Batched: bulk prefix, then the rest in a single insert_batch.
    let mut batched = db_of(&series[..split], 1);
    let batch_rows: Vec<(String, Vec<f64>)> = series[split..]
        .iter()
        .enumerate()
        .map(|(i, s)| (format!("S{}", split + i), s.clone()))
        .collect();
    batched.insert_batch("r", batch_rows).unwrap();

    // WAL replay: prefix checkpointed, suffix inserted through the WAL,
    // then the whole database reopened from the durable directory. Built
    // without the env fixtures — this path needs exactly one WAL, ours
    // (under SIMQ_WAL=1 the fixture would already have attached one).
    let dir = unique_wal_dir();
    {
        let mut writer = Database::new();
        writer.add_relation_indexed(relation_with(
            &series[..split],
            FeatureScheme::paper_default(),
        ));
        writer.attach_wal(&dir).unwrap();
        for (i, s) in series[split..].iter().enumerate() {
            writer
                .insert_into("r", format!("S{}", split + i), s.clone())
                .unwrap();
        }
    }
    let (mut replayed, _report) = Database::open_durable(&dir).unwrap();

    // Resharded: the same rows under a 4-way shard layout.
    let mut sharded = db_of(&series, 4);

    let reference = signature_bits(&bulk, rows);
    for (db, what) in [
        (&incremental, "incremental insert"),
        (&batched, "batch insert"),
        (&replayed, "WAL replay"),
        (&sharded, "resharded"),
    ] {
        assert_eq!(
            signature_bits(db, rows),
            reference,
            "{what}: signatures diverge from bulk load"
        );
    }

    // And the filter is transparent on every build (tree shapes differ,
    // so dismissal *counts* may differ between builds — the answer sets
    // must not).
    for q in query_matrix() {
        bulk.set_filter(true);
        let expect = execute(&bulk, &q).unwrap();
        for (db, what) in [
            (&mut incremental, "incremental insert"),
            (&mut batched, "batch insert"),
            (&mut replayed, "WAL replay"),
            (&mut sharded, "resharded"),
        ] {
            assert_filter_transparent(db, &q, what);
            db.set_filter(true);
            let got = execute(db, &q).unwrap();
            assert_outputs_bitwise_equal(&expect, &got, &format!("{what}: {q}"));
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Streaming cursors take the same verification shortcut: a session
/// cursor drains identical rows with the filter on and off.
#[test]
fn cursor_results_unaffected_by_filter() {
    let series = corpus(19, 80, 64);
    let mut db = db_of(&series, 1);
    let drain = |db: &Database| -> Vec<(u64, u64)> {
        let session = Session::new(db);
        let cursor = session
            .cursor_text("FIND SIMILAR TO ROW 0 IN r EPSILON 2.0")
            .expect("cursor opens");
        cursor.map(|h| (h.id, h.distance.to_bits())).collect()
    };
    db.set_filter(true);
    let filtered = drain(&db);
    db.set_filter(false);
    let unfiltered = drain(&db);
    assert_eq!(filtered, unfiltered, "cursor rows diverge under the filter");
}
