//! The persistence contract as executable properties.
//!
//! 1. **Bitwise round-trip**: an arbitrary relation saved to a snapshot and
//!    reopened reproduces every row — id, name, raw series, statistics,
//!    index point and normal-form spectrum — with identical `f64` bit
//!    patterns, and the reopened R*-tree has the identical node layout
//!    (pinned by byte-equal re-serialization).
//! 2. **Query equivalence**: a reopened database answers range, kNN and
//!    join queries identically to the in-memory build, serially and at 4
//!    threads, with the index decoded rather than re-bulk-loaded.
//! 3. **Corruption safety**: flipping any byte of a snapshot makes loading
//!    return an error — never a panic, never silently wrong data.
//! 4. **WAL corruption safety**: flipping or truncating random bytes of a
//!    durable directory's write-ahead log never panics and never errors —
//!    reopening recovers the longest valid record prefix, reports what was
//!    dropped in the [`ReplayReport`], and repairs the log on disk so the
//!    next open is clean.

mod common;

use common::{assert_outputs_bitwise_equal, corpus, relation_with};
use proptest::prelude::*;
use similarity_queries::index::serial;
use similarity_queries::prelude::*;
use similarity_queries::storage::snapshot;

fn f64_bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Saves `rel` (with a bulk-loaded index) to an in-memory snapshot and
/// loads it back, asserting the bitwise round-trip contract.
fn assert_snapshot_roundtrip(rel: &SeriesRelation) {
    let tree = rel.build_index(RTreeConfig::default());
    let file = snapshot::to_bytes(&[(rel, Some(&tree))]);
    let loaded = snapshot::from_bytes(&file).expect("valid snapshot loads");
    assert_eq!(loaded.len(), 1);
    let entry = loaded[0].single().expect("unsharded entry");
    let back = &entry.relation;

    assert_eq!(back.name(), rel.name());
    assert_eq!(back.series_len(), rel.series_len());
    assert_eq!(back.scheme(), rel.scheme());
    assert_eq!(back.len(), rel.len());
    for (a, b) in rel.rows().zip(back.rows()) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.name, b.name);
        assert_eq!(f64_bits(&a.raw), f64_bits(&b.raw));
        assert_eq!(a.features.mean.to_bits(), b.features.mean.to_bits());
        assert_eq!(a.features.std_dev.to_bits(), b.features.std_dev.to_bits());
        assert_eq!(f64_bits(&a.features.point), f64_bits(&b.features.point));
        assert_eq!(a.features.spectrum.len(), b.features.spectrum.len());
        for (x, y) in a.features.spectrum.iter().zip(&b.features.spectrum) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
    }

    // Identical node layout: the loaded tree re-serializes byte-for-byte.
    let back_tree = entry.index.as_ref().expect("index was saved");
    assert_eq!(serial::to_bytes(back_tree), serial::to_bytes(&tree));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary relations over both representations, with and without
    /// statistics dimensions, round-trip bitwise.
    #[test]
    fn snapshot_roundtrip_is_bitwise(
        seed in 0u64..10_000,
        rows in 1usize..60,
        len_pow in 4u32..8, // 16..128, power of two for the FFT
        k in 1usize..4,
        polar in prop_oneof![Just(true), Just(false)],
        stats in prop_oneof![Just(true), Just(false)],
    ) {
        let len = 1usize << len_pow;
        let rep = if polar { Representation::Polar } else { Representation::Rectangular };
        let series = corpus(seed, rows, len);
        let rel = relation_with(&series, FeatureScheme::new(k, rep, stats));
        assert_snapshot_roundtrip(&rel);
    }

    /// Any single corrupted byte makes the load fail cleanly.
    #[test]
    fn corrupted_snapshot_errors_never_panics(
        seed in 0u64..10_000,
        rows in 1usize..25,
        pos_frac in 0.0f64..1.0,
        mask in 1u8..=255,
    ) {
        let series = corpus(seed, rows, 32);
        let rel = relation_with(&series, FeatureScheme::paper_default());
        let tree = rel.build_index(RTreeConfig::default());
        let mut file = snapshot::to_bytes(&[(&rel, Some(&tree))]);
        let pos = ((file.len() - 1) as f64 * pos_frac) as usize;
        file[pos] ^= mask; // mask ≥ 1, so the byte really changes
        prop_assert!(
            snapshot::from_bytes(&file).is_err(),
            "flip of byte {pos} with mask {mask:#x} went undetected"
        );
    }

    /// Truncating a snapshot anywhere makes the load fail cleanly.
    #[test]
    fn truncated_snapshot_errors_never_panics(
        seed in 0u64..10_000,
        cut_frac in 0.0f64..1.0,
    ) {
        let series = corpus(seed, 10, 32);
        let rel = relation_with(&series, FeatureScheme::paper_default());
        let file = snapshot::to_bytes(&[(&rel, None)]);
        let cut = ((file.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(snapshot::from_bytes(&file[..cut]).is_err());
    }
}

/// Builds a durable directory whose WAL tail holds `inserts` acknowledged
/// records beyond the base checkpoint, then simulates a crash (drops the
/// database). Returns the directory and the single on-disk WAL path.
fn durable_dir_with_wal(seed: u64, inserts: usize) -> (std::path::PathBuf, std::path::PathBuf) {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "simq-wal-fuzz-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed),
    ));
    std::fs::remove_dir_all(&dir).ok();

    let series = corpus(seed, 8, 32);
    let rel = relation_with(&series, FeatureScheme::paper_default());
    let mut db = Database::new();
    db.add_relation_indexed(rel);
    db.attach_wal(&dir).unwrap();
    let mut gen = WalkGenerator::new(seed.wrapping_add(99));
    for i in 0..inserts {
        db.insert_into("r", format!("W{i}"), gen.series(32))
            .unwrap();
    }
    drop(db); // crash: the WAL tail is the only copy of the inserts

    let wal = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| p.extension().is_some_and(|e| e == "wal"))
        .expect("acknowledged inserts leave a WAL file");
    (dir, wal)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Flipping any byte of the WAL never panics and never fails the
    /// open: the intact record prefix replays, the rest is reported
    /// dropped, and the repaired log opens cleanly the second time.
    #[test]
    fn corrupted_wal_recovers_longest_valid_prefix(
        seed in 0u64..10_000,
        inserts in 1usize..8,
        pos_frac in 0.0f64..1.0,
        mask in 1u8..=255,
    ) {
        let (dir, wal) = durable_dir_with_wal(seed, inserts);
        let mut bytes = std::fs::read(&wal).unwrap();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= mask;
        std::fs::write(&wal, &bytes).unwrap();

        let (db, replay) = Database::open_durable(&dir).unwrap();
        let applied = replay.records_applied as usize;
        let lost = replay.records_dropped as usize;
        prop_assert!(applied <= inserts, "replayed more than was written");
        prop_assert!(
            applied + lost <= inserts,
            "accounted for more records than were written"
        );
        // A flip is always detected: at least the final record (or an
        // earlier one) stops replaying, and the loss is reported.
        prop_assert!(applied < inserts, "flip of byte {pos} went undetected");
        prop_assert_eq!(
            db.relation("r").unwrap().row_count(),
            8 + applied,
            "rows must match the replayed prefix exactly"
        );
        prop_assert!(replay.wal_files_repaired >= 1, "corrupt log was not repaired");

        // The repair truncated the log to the valid prefix: a second open
        // replays the same records with nothing further dropped.
        drop(db);
        let (_db2, second) = Database::open_durable(&dir).unwrap();
        prop_assert_eq!(second.records_applied as usize, applied);
        prop_assert_eq!(second.records_dropped, 0);
        prop_assert_eq!(second.bytes_dropped, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Truncating the WAL anywhere never panics: exactly the records
    /// fully contained in the remaining bytes replay (a torn final
    /// record is dropped bytes, not a lost whole record).
    #[test]
    fn truncated_wal_recovers_complete_records(
        seed in 0u64..10_000,
        inserts in 1usize..8,
        cut_frac in 0.0f64..1.0,
    ) {
        let (dir, wal) = durable_dir_with_wal(seed, inserts);
        let bytes = std::fs::read(&wal).unwrap();
        let cut = (bytes.len() as f64 * cut_frac) as usize;
        std::fs::write(&wal, &bytes[..cut]).unwrap();

        // The record stream is uniform, so the count surviving a cut is
        // derivable from the single-record length.
        let per_record = bytes.len() / inserts;
        let expect = cut / per_record;

        let (db, replay) = Database::open_durable(&dir).unwrap();
        prop_assert_eq!(replay.records_applied as usize, expect, "cut at {}", cut);
        prop_assert_eq!(replay.records_dropped, 0, "a torn record never parses whole");
        prop_assert_eq!(db.relation("r").unwrap().row_count(), 8 + expect);
        if !cut.is_multiple_of(per_record) {
            prop_assert!(replay.wal_files_repaired >= 1, "torn tail was not repaired");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The acceptance contract: a database saved and reopened from disk
/// answers range, kNN and join queries identically to the in-memory build,
/// at 1 and 4 threads, without re-bulk-loading the R*-tree.
#[test]
fn reopened_database_is_query_for_query_identical() {
    let series = corpus(97, 120, 64);
    let rel = relation_with(&series, FeatureScheme::paper_default());
    let mut built = Database::new();
    built.add_relation_indexed(rel);

    let dir = std::env::temp_dir().join("simq-snapshot-roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("db.simq");
    built.save_snapshot(&path).unwrap();
    let mut opened = Database::open_snapshot(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let queries = [
        "FIND SIMILAR TO ROW 5 IN r EPSILON 3.0",
        "FIND SIMILAR TO ROW 5 IN r EPSILON 3.0 FORCE SCAN",
        "FIND SIMILAR TO ROW 3 IN r USING mavg(8) ON BOTH EPSILON 2.0",
        "FIND 7 NEAREST TO ROW 10 IN r",
        "FIND 7 NEAREST TO ROW 10 IN r FORCE SCAN",
        "FIND PAIRS IN r USING mavg(8) EPSILON 1.5 METHOD b",
        "FIND PAIRS IN r USING mavg(8) EPSILON 1.5 METHOD d",
    ];
    for q in queries {
        for threads in [1usize, 4] {
            let p = if threads == 1 {
                Parallelism::Serial
            } else {
                Parallelism::Fixed(threads)
            };
            built.set_parallelism(p);
            opened.set_parallelism(p);
            let a = execute(&built, q).unwrap();
            let b = execute(&opened, q).unwrap();
            assert_outputs_bitwise_equal(&a, &b, &format!("{q} (threads {threads})"));
            // Arena-identical trees do identical work (index paths only
            // report node visits; scans report none either way).
            assert_eq!(
                a.stats.nodes_visited, b.stats.nodes_visited,
                "{q} (threads {threads})"
            );
        }
    }
}

/// The reopened index is the decoded structure, not a fresh bulk-load:
/// even after the original relation's tree is mutated, the snapshot keeps
/// the old structure (decoding preserves, rebuilding would diverge).
#[test]
fn open_snapshot_preserves_tree_structure_not_rebuilds() {
    let series = corpus(7, 80, 32);
    let rel = relation_with(&series, FeatureScheme::paper_default());
    // An *incrementally built* tree has a different node layout than a
    // bulk-loaded one over the same points.
    let incremental = rel.build_index_incremental(RTreeConfig::default());
    let bulk = rel.build_index(RTreeConfig::default());
    let inc_bytes = serial::to_bytes(&incremental);
    assert_ne!(inc_bytes, serial::to_bytes(&bulk));

    let file = snapshot::to_bytes(&[(&rel, Some(&incremental))]);
    let loaded = snapshot::from_bytes(&file).unwrap();
    let back = loaded[0]
        .single()
        .expect("unsharded entry")
        .index
        .as_ref()
        .unwrap();
    // If open re-bulk-loaded, this would equal `bulk`; it equals the
    // incremental original instead.
    assert_eq!(serial::to_bytes(back), inc_bytes);
}
