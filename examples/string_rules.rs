//! The framework beyond time series: similarity between strings defined
//! by costed rewrite rules — the classical example domain of the PODS'95
//! similarity model.
//!
//! "An object A is considered similar to an object B, if B can be reduced
//! to it by a sequence of transformations defined in T."
//!
//! ```sh
//! cargo run --release --example string_rules
//! ```

use similarity_queries::prelude::*;
use similarity_queries::strings::StringPattern;

fn main() {
    // -- A domain-specific rule system for place names. -------------------
    let rules = RuleSet::unit_edits("abcdefghijklmnopqrstuvwxyz ")
        .with(RewriteRule::new("St ", "Saint ", 0.2))
        .with(RewriteRule::new("Mt ", "Mount ", 0.2))
        .with(RewriteRule::new("NYC", "New York City", 0.3));

    let budget = RewriteBudget::with_cost(3.0);
    println!("place-name similarity under domain rules:");
    for (a, b) in [
        ("St Petersburg", "Saint Petersburg"),
        ("Mt Washington", "Mount Washington"),
        ("NYC marathon", "New York City marathon"),
        ("St Louis", "Saint Lewis"),
    ] {
        let r = rewrite_distance(a, b, &rules, &budget);
        match r.cost {
            Some(c) => {
                println!("  {a:?} → {b:?}: cost {c:.2}");
                for step in r.path.windows(2) {
                    println!("      {} ⇒ {}", step[0], step[1]);
                }
            }
            None => println!("  {a:?} → {b:?}: not within budget"),
        }
    }

    // Plain edit distance for comparison: the domain rules are much
    // cheaper than spelling out the expansion character by character.
    println!("\nLevenshtein comparison:");
    println!(
        "  St Petersburg / Saint Petersburg: edit distance {}, rule distance 0.2",
        levenshtein("St Petersburg", "Saint Petersburg")
    );

    // -- The similarity predicate over a small database. ------------------
    let cities = [
        "Saint Petersburg",
        "Mount Washington",
        "New York City",
        "San Francisco",
        "St Paul",
    ];
    println!("\nsim(o, e, t, c): which cities reduce to a stored name at cost ≤ 0.5?");
    for query in ["St Petersburg", "Mt Washington", "Sen Francisco"] {
        let matches: Vec<&str> = cities
            .iter()
            .filter(|c| {
                rewrite_distance(query, c, &rules, &RewriteBudget::with_cost(0.5))
                    .cost
                    .is_some()
            })
            .copied()
            .collect();
        println!("  {query:?} ≈ {matches:?}");
    }

    // -- The pattern language P: wildcard patterns denote object sets. ----
    let pattern = StringPattern::compile("S*");
    let set: Vec<&str> = cities
        .iter()
        .filter(|c| pattern.is_match(c))
        .copied()
        .collect();
    println!("\npattern S* denotes {set:?}");

    // -- The same machinery through the generic core framework. -----------
    // Strings are DataObjects with the discrete ground metric; rewrite
    // rules become framework transformations. (The dedicated search in
    // simq-strings is faster; this shows the shared abstraction.)
    use similarity_queries::core::{FnTransformation, SearchConfig, TransformationSet};
    let swap_rule = FnTransformation::fallible("St→Saint", 0.2, |s: &SymbolString| {
        s.as_str().find("St ").map(|i| {
            SymbolString::new(format!(
                "{}Saint {}",
                &s.as_str()[..i],
                &s.as_str()[i + 3..]
            ))
        })
    });
    let t = TransformationSet::empty().with(swap_rule);
    let d = similarity_distance(
        &SymbolString::from("St Petersburg"),
        &SymbolString::from("Saint Petersburg"),
        &t,
        &SearchConfig::with_budget(1.0),
    )
    .unwrap();
    println!(
        "\ncore framework distance(St Petersburg, Saint Petersburg) = {} via {:?}",
        d.distance, d.witness
    );
}
