//! Time warping — comparing series sampled at different frequencies
//! (Example 1.2 and Appendix A).
//!
//! A stock sampled every other day cannot be compared directly with one
//! sampled daily; stretching its time dimension by 2 aligns them. The
//! frequency-domain form (coefficients `a_f = Σ_t e^{-j2πtf/(mn)}`) lets
//! the same comparison run on stored Fourier coefficients without ever
//! materializing the stretched series.
//!
//! ```sh
//! cargo run --release --example warped_sampling
//! ```

use similarity_queries::prelude::*;
use similarity_queries::series::warp::warp_coefficients;

fn main() {
    // -- Example 1.2 verbatim. -------------------------------------------
    let s = [20.0, 20.0, 21.0, 21.0, 20.0, 20.0, 23.0, 23.0]; // daily
    let p = [20.0, 21.0, 20.0, 23.0]; // every other day
    println!("s (daily):        {s:?}");
    println!("p (every 2 days): {p:?}");
    let warped = warp(&p, 2).unwrap();
    println!("warp(p, 2):       {warped:?}");
    println!("D(warp(p,2), s) = {}", euclidean(&warped, &s));
    assert_eq!(warped, s.to_vec());

    // -- The same comparison in the frequency domain. --------------------
    let p_spec = similarity_queries::dsp::forward_real(&p);
    let s_spec = similarity_queries::dsp::forward_real(&s);
    let coeffs = warp_coefficients(p.len(), 2, p.len()).unwrap();
    println!("\nfrequency-domain check (a_f · P_f vs S_f):");
    for f in 0..p.len() {
        let lhs = coeffs[f] * p_spec[f];
        println!("  f={f}: {lhs}  vs  {}", s_spec[f]);
    }

    // -- Warp queries through the query language. -------------------------
    // A corpus of daily series; we look for ones matching a weekly-sampled
    // query pattern after warping the *stored* side? No — the query
    // pattern is the sparse one, so we warp the query: `ON BOTH` is not
    // needed; we warp the literal before asking.
    let mut gen = WalkGenerator::new(3);
    let mut relation = SeriesRelation::new("daily", 128, FeatureScheme::paper_default());
    for i in 0..500 {
        relation
            .insert(format!("D{i:03}"), gen.series(128))
            .unwrap();
    }
    // Plant a series that is exactly the 2-warp of a sparse pattern.
    let sparse = gen.series(64);
    let planted = warp(&sparse, 2).unwrap();
    relation.insert("PLANTED", planted).unwrap();
    let mut db = Database::new();
    db.add_relation_indexed(relation);

    // Query: the sparse pattern, warped to daily resolution, as a literal.
    let literal = warp(&sparse, 2)
        .unwrap()
        .iter()
        .map(|v| format!("{v}"))
        .collect::<Vec<_>>()
        .join(", ");
    let q = format!("FIND SIMILAR TO [{literal}] IN daily EPSILON 0.2");
    let result = execute(&db, &q).unwrap();
    let QueryOutput::Hits(hits) = &result.output else {
        unreachable!()
    };
    println!("\nsearching 501 daily series for the warped sparse pattern:");
    for h in hits {
        println!("  {} at distance {:.4}", h.name, h.distance);
    }
    assert!(hits.iter().any(|h| h.name == "PLANTED"));

    // Alternatively, let the engine warp stored *sparse* series to match a
    // *dense* query: a relation of sparse series searched USING warp(2).
    let mut gen2 = WalkGenerator::new(4);
    let mut sparse_rel = SeriesRelation::new("sparse", 64, FeatureScheme::paper_default());
    for i in 0..500 {
        sparse_rel
            .insert(format!("W{i:03}"), gen2.series(64))
            .unwrap();
    }
    let needle = gen2.series(64);
    sparse_rel.insert("NEEDLE", needle.clone()).unwrap();
    let mut db2 = Database::new();
    db2.add_relation_indexed(sparse_rel);

    // The dense query is the needle warped to 128 days — but the relation
    // stores 64-day series, so we pose the *sparse* needle and ask for the
    // warp on both sides, demonstrating the warp(2) coefficients at work
    // in the index (safe in the polar representation only).
    let warped_q = execute(
        &db2,
        "EXPLAIN FIND SIMILAR TO NAME NEEDLE IN sparse USING warp(2) ON BOTH EPSILON 0.1",
    )
    .unwrap();
    if let QueryOutput::Plan(text) = &warped_q.output {
        println!("\n{text}");
    }
    let result = execute(
        &db2,
        "FIND SIMILAR TO NAME NEEDLE IN sparse USING warp(2) ON BOTH EPSILON 0.1",
    )
    .unwrap();
    let QueryOutput::Hits(hits) = &result.output else {
        unreachable!()
    };
    println!("warp(2)-space matches of NEEDLE: {}", hits.len());
    assert!(hits.iter().any(|h| h.name == "NEEDLE"));
}
