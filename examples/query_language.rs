//! A tour of the query language: every query form, EXPLAIN output, the
//! planner's safety-driven fallback, and relation persistence.
//!
//! ```sh
//! cargo run --release --example query_language
//! ```

use similarity_queries::prelude::*;
use similarity_queries::storage::persist;

fn main() {
    // Build a corpus and persist it to the tiny text format.
    let mut gen = WalkGenerator::new(11);
    let mut relation = SeriesRelation::new("walks", 64, FeatureScheme::paper_default());
    for i in 0..300 {
        relation.insert(format!("W{i:03}"), gen.series(64)).unwrap();
    }
    let path = std::env::temp_dir().join("simq-demo-relation.txt");
    persist::save(&relation, &path).expect("writable temp dir");
    let reloaded = persist::load(&path).expect("round-trip");
    println!(
        "persisted and reloaded {} series from {}",
        reloaded.len(),
        path.display()
    );

    let mut db = Database::new();
    db.add_relation_indexed(reloaded);

    // Also register the same data under a rectangular scheme without
    // statistics dimensions, to show planner differences.
    let mut rect_rel = SeriesRelation::new(
        "walks_rect",
        64,
        FeatureScheme::new(3, Representation::Rectangular, false),
    );
    let mut gen = WalkGenerator::new(11);
    for i in 0..300 {
        rect_rel.insert(format!("W{i:03}"), gen.series(64)).unwrap();
    }
    db.add_relation_indexed(rect_rel);

    let queries = [
        // Range, identity, index-served.
        "FIND SIMILAR TO ROW 42 IN walks EPSILON 2.0",
        // Range with a chained transformation, polar-safe.
        "FIND SIMILAR TO ROW 42 IN walks USING reverse THEN mavg(10) ON BOTH EPSILON 2.0",
        // The same over the rectangular scheme: mavg multipliers are
        // complex, Theorem 2 forbids them, the planner falls back to scan.
        "FIND SIMILAR TO ROW 42 IN walks_rect USING mavg(10) ON BOTH EPSILON 2.0",
        // Reverse has real multipliers: index-safe in both representations.
        "FIND SIMILAR TO ROW 42 IN walks_rect USING reverse EPSILON 5.0",
        // kNN: index-served on the rectangular scheme…
        "FIND 3 NEAREST TO ROW 42 IN walks_rect",
        // …and on the polar scheme too, via the annular-sector MINDIST.
        "FIND 3 NEAREST TO ROW 42 IN walks",
        // All-pairs with all four methods of the paper's Table 1.
        "FIND PAIRS IN walks USING mavg(20) EPSILON 1.0 METHOD a",
        "FIND PAIRS IN walks USING mavg(20) EPSILON 1.0 METHOD b",
        "FIND PAIRS IN walks USING mavg(20) EPSILON 1.0 METHOD c",
        "FIND PAIRS IN walks USING mavg(20) EPSILON 1.0 METHOD d",
        // Asymmetric hedging join.
        "FIND PAIRS IN walks MATCHING mavg(20) AGAINST reverse THEN mavg(20) EPSILON 1.0",
        // GK95 shift/scale window: similar shape AND similar price level.
        "FIND SIMILAR TO ROW 42 IN walks EPSILON 3.0 MEAN WITHIN 5.0 STD WITHIN 2.0",
    ];

    for q in queries {
        println!("\n>> {q}");
        match execute(&db, &format!("EXPLAIN {q}")) {
            Ok(explained) => {
                if let QueryOutput::Plan(text) = explained.output {
                    for line in text.lines() {
                        println!("   | {line}");
                    }
                }
            }
            Err(e) => {
                println!("   ! plan error: {e}");
                continue;
            }
        }
        match execute(&db, q) {
            Ok(result) => {
                let summary = match &result.output {
                    QueryOutput::Hits(h) => format!("{} hits", h.len()),
                    QueryOutput::Pairs(p) => format!("{} pairs", p.len()),
                    QueryOutput::Plan(_) | QueryOutput::Analyzed { .. } => unreachable!(),
                };
                println!(
                    "   = {summary}  [nodes={} rows={} candidates={} verified={}]",
                    result.stats.nodes_visited,
                    result.stats.rows_scanned,
                    result.stats.candidates,
                    result.stats.verified
                );
            }
            Err(e) => println!("   ! exec error: {e}"),
        }
    }

    // Parse errors carry byte offsets.
    println!("\nerror reporting:");
    for bad in [
        "FIND SIMILAR TO ROW 0 IN walks",           // missing EPSILON
        "FIND SIMILAR TO ROW 0 IN walks EPSILON x", // not a number
        "FIND PAIRS IN walks USING bogus(3) EPSILON 1",
    ] {
        if let Err(e) = execute(&db, bad) {
            println!("  {bad:?}\n    -> {e}");
        }
    }

    std::fs::remove_file(&path).ok();
}
