//! Finding hedging pairs — Example 2.2 and the paper's join experiment.
//!
//! "Transformation T_rev can be used to obtain all the pairs of series
//! that move in opposite directions. This can be formulated in our query
//! language for a given relation r as a spatial join between r and
//! T_rev(r)."
//!
//! The simulated market plants anti-correlated mirror pairs; this example
//! recovers them with a `FIND PAIRS … USING reverse THEN mavg(20)` query
//! and checks the findings against the generator's ground truth.
//!
//! ```sh
//! cargo run --release --example hedging_pairs
//! ```

use similarity_queries::data::{MarketConfig, StockKind, StockMarket};
use similarity_queries::prelude::*;

fn main() {
    let config = MarketConfig {
        stocks: 400,
        mirrored_fraction: 0.08,
        ..MarketConfig::default()
    };
    let market = StockMarket::generate(&config, 7);
    let planted: Vec<(usize, usize)> = market
        .stocks
        .iter()
        .enumerate()
        .filter_map(|(i, s)| match s.kind {
            StockKind::Mirror { of } => Some((of, i)),
            StockKind::Sectoral { .. } => None,
        })
        .collect();
    println!(
        "market: {} stocks, {} planted hedging pairs",
        market.stocks.len(),
        planted.len()
    );

    let mut relation = SeriesRelation::new("market", 128, FeatureScheme::paper_default());
    for stock in &market.stocks {
        relation
            .insert(stock.name.clone(), stock.prices.clone())
            .unwrap();
    }
    let mut db = Database::new();
    db.add_relation_indexed(relation);

    // Join r with T_rev(r): pairs whose normal forms, one reversed and
    // both smoothed by a 20-day moving average, nearly coincide — the
    // paper's Example 2.2 as a MATCHING … AGAINST … join.
    let result = execute(
        &db,
        "FIND PAIRS IN market MATCHING mavg(20) AGAINST reverse THEN mavg(20) EPSILON 0.6 METHOD d",
    )
    .unwrap();
    let QueryOutput::Pairs(pairs) = &result.output else {
        unreachable!()
    };
    println!(
        "join returned {} candidate pairs ({} index nodes read)",
        pairs.len(),
        result.stats.nodes_visited
    );

    // How many planted mirrors did the join recover?
    let mut recovered = 0;
    for (a, b) in &planted {
        let found = pairs.iter().any(|p| {
            (p.a as usize, p.b as usize) == (*a, *b) || (p.b as usize, p.a as usize) == (*a, *b)
        });
        if found {
            recovered += 1;
        }
    }
    println!("recovered {recovered}/{} planted pairs", planted.len());
    for p in pairs.iter().take(8) {
        let na = &market.stocks[p.a as usize].name;
        let nb = &market.stocks[p.b as usize].name;
        println!("  {na} ↔ {nb}  (distance: {:.3})", p.distance);
    }

    // Compare with the scan-based method b: identical answers, more work.
    let scan = execute(
        &db,
        "FIND PAIRS IN market MATCHING mavg(20) AGAINST reverse THEN mavg(20) EPSILON 0.6 METHOD b",
    )
    .unwrap();
    let QueryOutput::Pairs(scan_pairs) = &scan.output else {
        unreachable!()
    };
    assert_eq!(pairs.len(), scan_pairs.len(), "methods b and d must agree");
    println!(
        "\nmethod b (scan) compared {} coefficients; method d read {} index nodes",
        scan.stats.coefficients_compared, result.stats.nodes_visited
    );
}
