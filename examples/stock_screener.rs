//! Stock screening à la Section 2 of the paper: how shifting, scaling and
//! moving averages expose similarity that raw Euclidean distance hides.
//!
//! Recreates the Example 2.1 pipeline (original → shifted → scaled →
//! 20-day moving average, distances falling at each step) on simulated
//! market data, then screens the whole market for stocks tracking a
//! chosen target.
//!
//! ```sh
//! cargo run --release --example stock_screener
//! ```

use similarity_queries::prelude::*;
use similarity_queries::series::normal;

fn main() {
    let market = StockMarket::paper_sized(2024);
    println!(
        "simulated market: {} stocks × {} days",
        market.stocks.len(),
        market.stocks[0].prices.len()
    );

    // -- Example 2.1 in miniature: two same-sector stocks. ---------------
    let (a, b) = same_sector_pair(&market);
    let pa = &market.stocks[a].prices;
    let pb = &market.stocks[b].prices;
    println!(
        "\ncomparing {} and {} (same sector):",
        market.stocks[a].name, market.stocks[b].name
    );
    println!("  original:            D = {:8.2}", euclidean(pa, pb));

    let sa = normal::shift(pa, -normal::mean(pa));
    let sb = normal::shift(pb, -normal::mean(pb));
    println!("  shifted (mean → 0):  D = {:8.2}", euclidean(&sa, &sb));

    let na = normal_form(pa).unwrap();
    let nb = normal_form(pb).unwrap();
    println!("  normal form:         D = {:8.2}", euclidean(&na, &nb));

    let ma = moving_average(&na, 20).unwrap();
    let mb = moving_average(&nb, 20).unwrap();
    println!("  20-day mavg:         D = {:8.2}", euclidean(&ma, &mb));

    // -- Screen the whole market through the query language. -------------
    let mut relation = SeriesRelation::new("market", 128, FeatureScheme::paper_default());
    for stock in &market.stocks {
        relation
            .insert(stock.name.clone(), stock.prices.clone())
            .unwrap();
    }
    let mut db = Database::new();
    db.add_relation_indexed(relation);

    let target = &market.stocks[a].name;
    println!("\nscreening for stocks tracking {target} (normal forms, 20-day mavg):");
    let q = format!("FIND SIMILAR TO NAME {target} IN market USING mavg(20) ON BOTH EPSILON 2.0");
    let result = execute(&db, &q).unwrap();
    let QueryOutput::Hits(hits) = &result.output else {
        unreachable!()
    };
    println!(
        "  {} matches via {:?} ({} index nodes read)",
        hits.len(),
        result.plan.access,
        result.stats.nodes_visited
    );
    for h in hits.iter().take(10) {
        println!("    {} at distance {:.3}", h.name, h.distance);
    }

    // The paper's Example 2.3 point: unrelated trends stay far apart no
    // matter how much we smooth.
    let (u, v) = cross_sector_pair(&market);
    let nu = normal_form(&market.stocks[u].prices).unwrap();
    let nv = normal_form(&market.stocks[v].prices).unwrap();
    let mut du = nu.clone();
    let mut dv = nv.clone();
    println!(
        "\nunrelated pair {} / {} under repeated 20-day smoothing:",
        market.stocks[u].name, market.stocks[v].name
    );
    for round in 1..=4 {
        du = moving_average(&du, 20).unwrap();
        dv = moving_average(&dv, 20).unwrap();
        println!("  after {round}× mavg(20): D = {:6.2}", euclidean(&du, &dv));
    }
}

/// First pair of distinct stocks in the same sector.
fn same_sector_pair(market: &StockMarket) -> (usize, usize) {
    use similarity_queries::data::StockKind;
    for i in 0..market.stocks.len() {
        for j in (i + 1)..market.stocks.len() {
            if let (StockKind::Sectoral { sector: a }, StockKind::Sectoral { sector: b }) =
                (market.stocks[i].kind, market.stocks[j].kind)
            {
                if a == b {
                    return (i, j);
                }
            }
        }
    }
    (0, 1)
}

/// First pair of stocks in different sectors.
fn cross_sector_pair(market: &StockMarket) -> (usize, usize) {
    use similarity_queries::data::StockKind;
    for i in 0..market.stocks.len() {
        for j in (i + 1)..market.stocks.len() {
            if let (StockKind::Sectoral { sector: a }, StockKind::Sectoral { sector: b }) =
                (market.stocks[i].kind, market.stocks[j].kind)
            {
                if a != b {
                    return (i, j);
                }
            }
        }
    }
    (0, 1)
}
