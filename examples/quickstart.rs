//! Quickstart: build a relation, index it, and run similarity queries
//! through the query language.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use similarity_queries::prelude::*;

fn main() {
    // 1. Generate a corpus of random-walk "price" series (the paper's
    //    synthetic workload) and load it into a relation.
    let mut gen = WalkGenerator::new(42);
    let mut relation = SeriesRelation::new("walks", 128, FeatureScheme::paper_default());
    for i in 0..1000 {
        let series = gen.series(128);
        relation
            .insert(format!("W{i:04}"), series)
            .expect("random walks are never constant");
    }
    println!(
        "loaded {} series of length {}",
        relation.len(),
        relation.series_len()
    );

    // 2. Register the relation with an R*-tree over its 6-d feature space
    //    (mean, std, and two complex DFT coefficients in polar form).
    let mut db = Database::new();
    db.add_relation_indexed(relation);

    // 3. A plain range query: series similar to row 17 as-is.
    let result = execute(&db, "FIND SIMILAR TO ROW 17 IN walks EPSILON 4.0").unwrap();
    report("plain range query", &result);

    // 4. The same query smoothed by a 20-day moving average: short-term
    //    fluctuations stop mattering, so more series qualify.
    let result = execute(
        &db,
        "FIND SIMILAR TO ROW 17 IN walks USING mavg(20) ON BOTH EPSILON 4.0",
    )
    .unwrap();
    report("20-day moving average", &result);

    // 5. Ask the planner what it did, and why.
    let explained = execute(
        &db,
        "EXPLAIN FIND SIMILAR TO ROW 17 IN walks USING mavg(20) ON BOTH EPSILON 4.0",
    )
    .unwrap();
    if let QueryOutput::Plan(text) = explained.output {
        println!("\nEXPLAIN:\n{text}");
    }

    // 6. Nearest neighbours — index-served even on the polar scheme,
    //    using the annular-sector spectral MINDIST lower bound.
    let result = execute(&db, "FIND 5 NEAREST TO ROW 17 IN walks").unwrap();
    report("5 nearest neighbours", &result);
}

fn report(title: &str, result: &QueryResult) {
    println!("\n== {title} ==");
    println!("   plan: {:?} ({})", result.plan.access, result.plan.reason);
    match &result.output {
        QueryOutput::Hits(hits) => {
            println!("   {} hits", hits.len());
            for h in hits.iter().take(5) {
                println!(
                    "     {} (id {}) at distance {:.3}",
                    h.name, h.id, h.distance
                );
            }
            if hits.len() > 5 {
                println!("     …");
            }
        }
        QueryOutput::Pairs(pairs) => println!("   {} pairs", pairs.len()),
        QueryOutput::Plan(p) => println!("{p}"),
        QueryOutput::Analyzed { report, .. } => println!("{report}"),
    }
    println!(
        "   work: {} index nodes, {} rows scanned, {} candidates, {} verified",
        result.stats.nodes_visited,
        result.stats.rows_scanned,
        result.stats.candidates,
        result.stats.verified
    );
}
